// Observability layer tests: metrics registry semantics, histogram bucket
// and quantile arithmetic, exact aggregation under concurrency, JSONL/CSV
// export shape, and the Chrome-trace recorder (including the disabled path
// and the ring-buffer bound). The tracer tests record from fresh threads so
// each one sees a buffer sized by its own enable() capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace dgs;

// ---- minimal JSON validator -------------------------------------------------
// Recursive-descent checker: accepts exactly the JSON grammar (objects,
// arrays, strings, numbers, true/false/null). Returns true iff the whole
// input is one valid JSON value. Enough to prove exports parse back.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == s_.size();
  }

 private:
  void skip_ws() {
    while (at_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[at_])))
      ++at_;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(at_, n, word) != 0) return false;
    at_ += n;
    return true;
  }
  bool string() {
    if (at_ >= s_.size() || s_[at_] != '"') return false;
    ++at_;
    while (at_ < s_.size() && s_[at_] != '"') {
      if (s_[at_] == '\\') {
        ++at_;
        if (at_ >= s_.size()) return false;
      }
      ++at_;
    }
    if (at_ >= s_.size()) return false;
    ++at_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = at_;
    if (at_ < s_.size() && s_[at_] == '-') ++at_;
    while (at_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[at_])) ||
            s_[at_] == '.' || s_[at_] == 'e' || s_[at_] == 'E' ||
            s_[at_] == '+' || s_[at_] == '-'))
      ++at_;
    return at_ > start;
  }
  bool value() {
    skip_ws();
    if (at_ >= s_.size()) return false;
    switch (s_[at_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++at_;  // '{'
    skip_ws();
    if (at_ < s_.size() && s_[at_] == '}') {
      ++at_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (at_ >= s_.size() || s_[at_] != ':') return false;
      ++at_;
      if (!value()) return false;
      skip_ws();
      if (at_ < s_.size() && s_[at_] == ',') {
        ++at_;
        continue;
      }
      break;
    }
    if (at_ >= s_.size() || s_[at_] != '}') return false;
    ++at_;
    return true;
  }
  bool array() {
    ++at_;  // '['
    skip_ws();
    if (at_ < s_.size() && s_[at_] == ']') {
      ++at_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (at_ < s_.size() && s_[at_] == ',') {
        ++at_;
        continue;
      }
      break;
    }
    if (at_ >= s_.size() || s_[at_] != ']') return false;
    ++at_;
    return true;
  }

  const std::string& s_;
  std::size_t at_ = 0;
};

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size()))
    ++count;
  return count;
}

// ---- registry semantics -----------------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("pushes");
  obs::Counter& c2 = registry.counter("pushes");
  EXPECT_EQ(&c1, &c2);

  obs::Gauge& g1 = registry.gauge("depth");
  EXPECT_EQ(&g1, &registry.gauge("depth"));

  obs::Histogram& h1 = registry.histogram("lat", {1.0, 2.0});
  // Bounds are consulted only on first registration.
  obs::Histogram& h2 = registry.histogram("lat", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.snapshot().bounds.size(), 2u);
}

TEST(MetricsRegistry, SnapshotAndResetCoverAllInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(5);
  registry.gauge("g").set(2.5);
  registry.histogram("h", {10.0}).record(3.0);

  obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c");
  EXPECT_EQ(snap.counters[0].second, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  EXPECT_NE(snap.find_histogram("h"), nullptr);
  EXPECT_EQ(snap.find_histogram("missing"), nullptr);
  EXPECT_EQ(snap.summary_of("missing").count, 0u);

  registry.reset();
  snap = registry.snapshot();
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
  EXPECT_EQ(snap.histograms[0].second.count, 0u);
}

// ---- exact aggregation under concurrency ------------------------------------

TEST(MetricsConcurrency, CounterIncrementsSumExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAdds = 100000;
  obs::Counter counter;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kAdds; ++i) counter.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAdds);
}

TEST(MetricsConcurrency, HistogramCountsSumExactly) {
  // Values chosen so the double-precision sum is exact and each lands in a
  // known bucket of {1, 2, 3}: 0.5 -> b0, 1.5 -> b1, 2.5 -> b2, 3.5 -> ovf.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerValue = 2500;
  obs::Histogram hist({1.0, 2.0, 3.0});
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < 4 * kPerValue; ++i)
        hist.record(0.5 + static_cast<double>(i % 4));
    });
  for (auto& t : threads) t.join();

  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * 4 * kPerValue);
  ASSERT_EQ(snap.counts.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b)
    EXPECT_EQ(snap.counts[b], kThreads * kPerValue) << "bucket " << b;
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 3.5);
  EXPECT_DOUBLE_EQ(snap.sum,
                   static_cast<double>(kThreads * kPerValue) *
                       (0.5 + 1.5 + 2.5 + 3.5));
}

// ---- bucket boundaries and quantiles ----------------------------------------

TEST(Histogram, BucketBoundariesAreUpperInclusive) {
  obs::Histogram hist({1.0, 2.0, 4.0});
  hist.record(1.0);  // == bound: belongs to bucket 0, (-inf, 1]
  hist.record(1.5);  // (1, 2]
  hist.record(2.0);  // == bound: bucket 1
  hist.record(4.0);  // == last bound: bucket 2
  hist.record(4.5);  // overflow
  const obs::HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, QuantileInterpolationIsExactOnUniformFill) {
  // 1..100 over bounds {25, 50, 75, 100}: 25 values per bucket, so linear
  // interpolation inside the rank's bucket recovers the value exactly.
  obs::Histogram hist({25.0, 50.0, 75.0, 100.0});
  for (int v = 1; v <= 100; ++v) hist.record(static_cast<double>(v));
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
  // Quantiles clamp to the observed range, not the bucket edges.
  EXPECT_GE(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 50.5);

  const obs::HistogramSummary summary = obs::summarize(snap);
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95, 95.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
}

TEST(Histogram, EmptyAndSingleValueQuantiles) {
  obs::Histogram hist({1.0, 10.0});
  EXPECT_DOUBLE_EQ(hist.snapshot().quantile(0.5), 0.0);  // empty
  hist.record(7.0);
  // One observation: every quantile collapses to it (clamped to [min,max]).
  EXPECT_DOUBLE_EQ(hist.snapshot().quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(hist.snapshot().quantile(0.99), 7.0);
}

TEST(Histogram, BoundHelpers) {
  const auto lin = obs::linear_bounds(0.05, 0.05, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[0], 0.05);
  EXPECT_NEAR(lin[2], 0.15, 1e-12);
  const auto exp = obs::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
}

// ---- export formats ---------------------------------------------------------

TEST(MetricsExport, JsonlLinesParseBack) {
  obs::MetricsRegistry registry;
  registry.counter("server.pushes").add(3);
  registry.gauge("pool").set(4.0);
  obs::Histogram& hist =
      registry.histogram("staleness", {1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) hist.record(static_cast<double>(i % 3));

  std::ostringstream os;
  registry.snapshot().write_jsonl(os, "unit-test");
  std::istringstream lines(os.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    EXPECT_NE(line.find("\"run\":\"unit-test\""), std::string::npos);
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
  // The histogram line carries the summary stats the harness consumers read.
  for (const char* field : {"\"count\":10", "\"p50\":", "\"p95\":",
                            "\"bounds\":[", "\"counts\":["})
    EXPECT_NE(os.str().find(field), std::string::npos) << field;
}

TEST(MetricsExport, CsvHasHeaderAndOneRowPerInstrument) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(1);
  registry.histogram("h", {5.0}).record(2.0);
  std::ostringstream os;
  registry.snapshot().write_csv(os);
  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], "name,type,value,count,mean,p50,p95,max");
  EXPECT_EQ(rows[1].rfind("c,counter,1", 0), 0u);
  EXPECT_EQ(rows[2].rfind("h,histogram,", 0), 0u);
}

// ---- StalenessStats (core) --------------------------------------------------

TEST(StalenessStats, SumCountMeanAndMerge) {
  core::StalenessStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  stats.record(1);
  stats.record(2);
  stats.record(6);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.max, 6u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);

  core::StalenessStats other;
  other.record(9);
  stats.merge(other);
  EXPECT_EQ(stats.count, 4u);
  EXPECT_EQ(stats.max, 9u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
}

// ---- tracer -----------------------------------------------------------------

#if DGS_TRACE_COMPILED

TEST(Tracer, ExportsWellFormedJsonWithNamedTracks) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable();

  const std::uint32_t shard_track = tracer.register_track("shard/test");
  std::thread worker([&] {
    tracer.set_thread_name("worker/test");
    {
      DGS_TRACE_SCOPE("compute", "worker");
    }
    DGS_TRACE_INSTANT("staleness", "server", 7);
    tracer.record_complete("apply", "shard", obs::Tracer::now_us(), 1.5,
                           shard_track);
  });
  worker.join();
  tracer.disable();

  std::ostringstream os;
  tracer.export_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"worker/test\""), std::string::npos);
  EXPECT_NE(json.find("\"shard/test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":7}"), std::string::npos);
  // The explicitly targeted span lands on the virtual track's tid.
  const std::size_t meta = json.find("\"args\":{\"name\":\"shard/test\"}");
  ASSERT_NE(meta, std::string::npos);
  const std::size_t tid_at = json.rfind("\"tid\":", meta);
  ASSERT_NE(tid_at, std::string::npos);
  const std::string tid =
      json.substr(tid_at, json.find(',', tid_at) - tid_at);
  EXPECT_NE(json.find(tid + ",\"ts\":"), std::string::npos);
  tracer.clear();
}

TEST(Tracer, DisabledPathRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.disable();
  std::thread worker([&] {
    for (int i = 0; i < 100; ++i) {
      DGS_TRACE_SCOPE("off_span", "test");
      DGS_TRACE_INSTANT("off_instant", "test", i);
    }
    tracer.record_complete("off_direct", "test", 0.0, 1.0);
  });
  worker.join();

  std::ostringstream os;
  tracer.export_json(os);
  EXPECT_EQ(os.str().find("off_"), std::string::npos);
  EXPECT_EQ(count_occurrences(os.str(), "\"ph\":\"X\""), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingBufferBoundsMemoryAndCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable(/*events_per_thread=*/16);
  // Fresh thread => fresh ring sized by the enable() above.
  std::thread worker([&] {
    for (int i = 0; i < 100; ++i)
      tracer.record_complete("ring_evt", "test", static_cast<double>(i), 1.0);
  });
  worker.join();
  tracer.disable();

  std::ostringstream os;
  tracer.export_json(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
  EXPECT_EQ(count_occurrences(os.str(), "\"ring_evt\""), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  tracer.clear();
  // Restore the default capacity for whatever runs after this test.
  tracer.enable();
  tracer.disable();
}

TEST(Tracer, ConcurrentRecordAndExportAreSafe) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        DGS_TRACE_SCOPE("spin", "test");
        DGS_TRACE_INSTANT("tick", "test", 1);
      }
    });
  for (int i = 0; i < 5; ++i) {
    std::ostringstream os;
    tracer.export_json(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  tracer.disable();
  tracer.clear();
}

#endif  // DGS_TRACE_COMPILED

}  // namespace
