// Tests for the synchronous SSGD engine: equivalence with single-node
// training, barrier timing with stragglers, averaging semantics.
#include <gtest/gtest.h>

#include "comm/message.h"
#include "core/session.h"
#include "data/synthetic.h"

namespace {

using namespace dgs;
using core::Method;

data::SyntheticDataset small_data(std::uint64_t seed = 21) {
  data::SyntheticSpec spec = data::SyntheticSpec::synth_cifar(seed);
  spec.num_train = 512;
  spec.num_test = 256;
  return data::make_synthetic(spec);
}

nn::ModelSpec small_model(const data::SyntheticDataset& data) {
  return nn::ModelSpec::mlp(data.train->feature_dim(), {32},
                            data.train->num_classes());
}

core::TrainConfig base_config(Method method, std::size_t workers) {
  core::TrainConfig config;
  config.method = method;
  config.num_workers = workers;
  config.batch_size = 16;
  config.epochs = 3;
  config.lr = 0.02;
  config.momentum = 0.7;
  config.seed = 77;
  return config;
}

// With one worker the barrier is trivial: SSGD == ASGD-on-one-worker ==
// plain SGD, so the sync and async engines produce the same curves.
TEST(SyncEngine, SingleWorkerMatchesAsyncEngine) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const auto config = base_config(Method::kASGD, 1);
  const auto sync = core::SyncEngine(spec, data.train, data.test, config).run();
  const auto async = core::SimEngine(spec, data.train, data.test, config).run();
  ASSERT_EQ(sync.curve.size(), async.curve.size());
  for (std::size_t i = 0; i < sync.curve.size(); ++i)
    EXPECT_DOUBLE_EQ(sync.curve[i].test_accuracy, async.curve[i].test_accuracy);
}

TEST(SyncEngine, MultiWorkerLearnsAllMethods) {
  const auto data = small_data();
  const auto spec = small_model(data);
  for (Method method : {Method::kASGD, Method::kGDAsync, Method::kDGCAsync,
                        Method::kDGS}) {
    auto config = base_config(method, 4);
    // SSGD averages the 4 gradients into one batch-64-equivalent step, so
    // there are 4x fewer optimizer steps per epoch than in the async runs;
    // compensate with the linear-scaling rule and a longer schedule.
    config.epochs = 8;
    config.lr = 0.08;
    const auto r = core::SyncEngine(spec, data.train, data.test, config).run();
    EXPECT_GT(r.final_test_accuracy, 0.55) << core::method_name(method);
    // One aggregation per round, 4 pushes per round.
    EXPECT_EQ(r.bytes.upward_messages, 4 * r.server_steps);
    EXPECT_GT(r.server_steps, 0u);
  }
}

TEST(SyncEngine, Deterministic) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const auto config = base_config(Method::kDGS, 3);
  const auto a = core::SyncEngine(spec, data.train, data.test, config).run();
  const auto b = core::SyncEngine(spec, data.train, data.test, config).run();
  EXPECT_DOUBLE_EQ(a.final_test_accuracy, b.final_test_accuracy);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.bytes.upward_bytes, b.bytes.upward_bytes);
}

// The barrier makes the round as slow as the slowest worker: doubling one
// worker's compute time should stretch sync wall-clock by roughly the
// straggler factor, while the async engine degrades much less.
TEST(SyncEngine, StragglersStallTheBarrier) {
  const auto data = small_data();
  const auto spec = small_model(data);
  auto config = base_config(Method::kDGS, 4);
  config.compute.base_seconds = 1e-3;
  config.compute.jitter_frac = 0.0;
  config.record_curve = false;

  const auto uniform = core::SyncEngine(spec, data.train, data.test, config).run();
  config.compute.worker_speed = {1.0, 1.0, 1.0, 4.0};
  const auto straggling =
      core::SyncEngine(spec, data.train, data.test, config).run();
  // Every round waits for the 4x straggler; fixed per-message comm time
  // dilutes the ratio below 4 but it must remain severe.
  EXPECT_GT(straggling.sim_seconds / uniform.sim_seconds, 2.3);

  // The async engine lets fast workers proceed (pipelining), so the same
  // straggler stretches the async makespan strictly less than the sync
  // barrier does (each worker still owns a fixed shard, so the straggler's
  // own share bounds the improvement).
  const auto async_uniform = [&] {
    auto c = config;
    c.compute.worker_speed.clear();
    return core::SimEngine(spec, data.train, data.test, c).run();
  }();
  const auto async_straggling =
      core::SimEngine(spec, data.train, data.test, config).run();
  const double async_ratio =
      async_straggling.sim_seconds / async_uniform.sim_seconds;
  const double sync_ratio = straggling.sim_seconds / uniform.sim_seconds;
  EXPECT_LT(async_ratio, sync_ratio);
}

TEST(SyncEngine, BroadcastDominatesDownwardBytes) {
  const auto data = small_data();
  const auto spec = small_model(data);
  auto config = base_config(Method::kDGS, 4);
  config.record_curve = false;
  const auto r = core::SyncEngine(spec, data.train, data.test, config).run();
  nn::ModulePtr probe = spec.build();
  const std::size_t model_bytes =
      nn::param_numel(probe->parameters()) * sizeof(float);
  // Every round broadcasts the dense model to every worker.
  EXPECT_EQ(r.bytes.downward_bytes,
            r.server_steps * 4 * (model_bytes + comm::kMessageHeaderBytes));
}

TEST(SyncEngine, SessionFacadeRoute) {
  const auto data = small_data();
  const auto spec = small_model(data);
  auto config = base_config(Method::kGDAsync, 2);
  config.epochs = 6;
  config.lr = 0.04;  // linear scaling for the averaged 2-worker batch
  core::TrainingSession session(spec, data.train, data.test, config,
                                core::EngineKind::kSynchronous);
  const auto r = session.run();
  EXPECT_GT(r.final_test_accuracy, 0.4);
}

}  // namespace
