// Tests for the runtime SIMD dispatch layer (util/simd.h, DESIGN.md §18):
// ISA parsing/forcing semantics, the byte-identity contract of every
// non-GEMM dispatched kernel across ISA paths, the oracle bound on the
// per-ISA GEMM micro-kernels, bitwise determinism of the (parallel-packed)
// GEMM across thread budgets on every path, and an allocation-counter
// proof that table dispatch itself never touches the heap.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <span>
#include <vector>

#include "sparse/quantize.h"
#include "sparse/select.h"
#include "util/gemm.h"
#include "util/math_kernels.h"
#include "util/parallel_for.h"
#include "util/rng.h"
#include "util/simd.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it.
// Used by the DispatchAllocationFree test to prove warmed-up dispatched
// kernels never allocate. Same idiom as tests/test_select.cpp.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dgs;
using util::Isa;

/// Every ISA tier the host can actually run, scalar first. All per-ISA
/// tests iterate this, so on a machine without AVX they still pass by
/// exercising the scalar path alone (the contract is then vacuous but the
/// harness stays green — CI's forced-scalar leg relies on that).
std::vector<Isa> supported_isas() {
  std::vector<Isa> isas;
  for (int i = 0; i < util::kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (util::isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

/// Mixed-magnitude values with the documented edge cases folded in: NaN,
/// both infinities, both zeros, denormals, and tiny/huge magnitudes, so
/// byte-identity is checked exactly where the float policies bite.
std::vector<float> edge_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-2.0f, 2.0f);
  const float specials[] = {
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      0.0f,
      -0.0f,
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::max(),
      -std::numeric_limits<float>::min(),
      1e-30f,
  };
  const std::size_t kNumSpecials = sizeof(specials) / sizeof(specials[0]);
  for (std::size_t i = 0; i < n && i < 4 * kNumSpecials; ++i) {
    // Scatter, don't cluster: hit vector bodies and scalar tails alike.
    const std::size_t at = (i * 97 + 13) % n;
    v[at] = specials[i % kNumSpecials];
  }
  return v;
}

std::vector<float> finite_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-2.0f, 2.0f);
  return v;
}

bool bytes_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// Lengths chosen to cover every code shape in the dispatched kernels:
// empty, scalar-only tails, exactly one vector width, the wide-unrolled
// body, and a large size with a ragged tail on every path.
constexpr std::size_t kLengths[] = {0, 1, 3, 7, 8, 15, 16, 31, 32, 33,
                                    63, 64, 65, 100, 1000, 4097};

// ------------------------------------------------------- ISA plumbing

TEST(SimdDispatch, ParseAndNameRoundTrip) {
  for (int i = 0; i < util::kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    Isa parsed = Isa::kAvx512;
    ASSERT_TRUE(util::parse_isa(util::isa_name(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa out = Isa::kScalar;
  EXPECT_FALSE(util::parse_isa("", &out));
  EXPECT_FALSE(util::parse_isa("AVX2", &out));  // case-sensitive vocabulary
  EXPECT_FALSE(util::parse_isa("sse2", &out));
  EXPECT_FALSE(util::parse_isa("avx512vl", &out));
  EXPECT_EQ(out, Isa::kScalar);  // untouched on failure
}

TEST(SimdDispatch, ScalarAlwaysSupportedAndOrderingHolds) {
  EXPECT_TRUE(util::isa_supported(Isa::kScalar));
  const Isa best = util::best_supported_isa();
  for (int i = 0; i <= util::isa_index(best); ++i)
    EXPECT_TRUE(util::isa_supported(static_cast<Isa>(i)))
        << "tiers below best_supported_isa() must all be runnable";
}

TEST(SimdDispatch, ForcedIsaScopeRestoresAndClampsToHost) {
  const Isa before = util::active_isa();
  {
    util::ForcedIsaScope forced(Isa::kScalar);
    EXPECT_EQ(util::active_isa(), Isa::kScalar);
    // Asking for more than the host has clamps to the best real tier.
    const Isa installed = util::set_forced_isa(Isa::kAvx512);
    EXPECT_EQ(installed, util::isa_supported(Isa::kAvx512)
                             ? Isa::kAvx512
                             : util::best_supported_isa());
    EXPECT_EQ(util::active_isa(), installed);
  }
  EXPECT_EQ(util::active_isa(), before);
}

// ------------------------------------- streaming kernel byte-identity

/// Runs `kernel` under every supported ISA and memcmps the result
/// against the scalar path's output (also produced via dispatch, pinned
/// by ForcedIsaScope). `kernel` must be deterministic given its inputs.
template <typename MakeResult>
void expect_byte_identical_across_isas(const char* what, MakeResult&& make) {
  std::vector<float> baseline;
  {
    util::ForcedIsaScope forced(Isa::kScalar);
    baseline = make();
  }
  for (Isa isa : supported_isas()) {
    util::ForcedIsaScope forced(isa);
    const std::vector<float> got = make();
    EXPECT_TRUE(bytes_equal(got, baseline))
        << what << " differs from scalar on " << util::isa_name(isa);
  }
}

TEST(SimdKernels, AxpyByteIdenticalAcrossIsas) {
  for (std::size_t n : kLengths) {
    const auto x = edge_values(n, 11 + n);
    const auto y0 = edge_values(n, 23 + n);
    expect_byte_identical_across_isas("axpy", [&] {
      std::vector<float> y = y0;
      util::axpy(1.7f, x, y);
      return y;
    });
  }
}

TEST(SimdKernels, AxpbyByteIdenticalAcrossIsas) {
  for (std::size_t n : kLengths) {
    const auto x = edge_values(n, 31 + n);
    const auto y0 = edge_values(n, 43 + n);
    expect_byte_identical_across_isas("axpby", [&] {
      std::vector<float> y = y0;
      util::axpby(0.05f, x, 0.7f, y);
      return y;
    });
  }
}

TEST(SimdKernels, ScaleByteIdenticalAcrossIsas) {
  for (std::size_t n : kLengths) {
    const auto x0 = edge_values(n, 53 + n);
    expect_byte_identical_across_isas("scale", [&] {
      std::vector<float> x = x0;
      util::scale(0.999f, x);
      return x;
    });
  }
}

TEST(SimdKernels, AmaxByteIdenticalAcrossIsas) {
  for (std::size_t n : kLengths) {
    const auto x = edge_values(n, 61 + n);
    expect_byte_identical_across_isas("amax", [&] {
      return std::vector<float>{util::amax(x)};
    });
  }
}

TEST(SimdKernels, AmaxSkipsNanPropagatesInf) {
  // Policy pinned in math_kernels.h: NaN skipped on every path, inf wins.
  std::vector<float> v(40, 0.25f);
  v[3] = std::numeric_limits<float>::quiet_NaN();
  v[21] = -3.0f;
  for (Isa isa : supported_isas()) {
    util::ForcedIsaScope forced(isa);
    EXPECT_EQ(util::amax(v), 3.0f) << util::isa_name(isa);
  }
  v[38] = -std::numeric_limits<float>::infinity();
  for (Isa isa : supported_isas()) {
    util::ForcedIsaScope forced(isa);
    EXPECT_TRUE(std::isinf(util::amax(v))) << util::isa_name(isa);
  }
}

TEST(SimdKernels, MaxAbsFiniteByteIdenticalAcrossIsas) {
  for (std::size_t n : kLengths) {
    const auto x = edge_values(n, 71 + n);
    expect_byte_identical_across_isas("max_abs_finite", [&] {
      return std::vector<float>{util::max_abs_finite(x)};
    });
  }
}

TEST(SimdKernels, MaxAbsFiniteIgnoresNonFinite) {
  std::vector<float> v(33, 0.5f);
  v[0] = std::numeric_limits<float>::infinity();
  v[16] = std::numeric_limits<float>::quiet_NaN();
  v[32] = -1.25f;
  for (Isa isa : supported_isas()) {
    util::ForcedIsaScope forced(isa);
    EXPECT_EQ(util::max_abs_finite(v), 1.25f) << util::isa_name(isa);
  }
  const std::vector<float> none_finite = {
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity()};
  for (Isa isa : supported_isas()) {
    util::ForcedIsaScope forced(isa);
    EXPECT_EQ(util::max_abs_finite(none_finite), 0.0f) << util::isa_name(isa);
  }
}

// --------------------------------------- select/quantize byte-identity

TEST(SimdSelect, CountKernelsByteIdenticalAcrossIsas) {
  for (std::size_t n : kLengths) {
    auto v = edge_values(n, 83 + n);
    for (std::size_t i = 0; i < n; i += 5) v[i] = 0.0f;  // real zeros too
    const std::uint32_t keys[] = {0u, sparse::magnitude_key(0.5f),
                                  sparse::magnitude_key(1e-30f), 0x7f800000u};
    std::vector<std::size_t> baseline;
    {
      util::ForcedIsaScope forced(Isa::kScalar);
      for (std::uint32_t key : keys)
        baseline.push_back(sparse::count_ge_key(v, key));
      baseline.push_back(sparse::count_zeros(v));
    }
    // count_ge_key(v, 0) counts everything, zeros included (pinned
    // contract) — worth asserting once outside the cross-ISA memcmp.
    if (n > 0) EXPECT_EQ(baseline[0], n);
    for (Isa isa : supported_isas()) {
      util::ForcedIsaScope forced(isa);
      std::size_t at = 0;
      for (std::uint32_t key : keys)
        EXPECT_EQ(sparse::count_ge_key(v, key), baseline[at++])
            << "count_ge_key on " << util::isa_name(isa) << " n=" << n;
      EXPECT_EQ(sparse::count_zeros(v), baseline[at])
          << "count_zeros on " << util::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdSelect, SparsifyByteIdenticalAcrossIsas) {
  // Below and above kRadixCutoff: the nth_element path dispatches the key
  // fill, the radix path dispatches the histogram passes.
  const std::size_t sizes[] = {257, 5000, sparse::SparsifyWorkspace::kRadixCutoff + 1,
                               100000};
  for (std::size_t n : sizes) {
    const auto values = edge_values(n, 97 + n);
    sparse::LayerChunk baseline;
    std::vector<float> residual_baseline;
    {
      util::ForcedIsaScope forced(Isa::kScalar);
      sparse::SparsifyWorkspace ws;
      std::vector<float> residual = values;
      ws.sparsify_zero(7, residual, 2.0, baseline);
      residual_baseline = residual;
    }
    for (Isa isa : supported_isas()) {
      util::ForcedIsaScope forced(isa);
      sparse::SparsifyWorkspace ws;
      sparse::LayerChunk chunk;
      std::vector<float> residual = values;
      ws.sparsify_zero(7, residual, 2.0, chunk);
      EXPECT_EQ(chunk.idx, baseline.idx)
          << "kept indices differ on " << util::isa_name(isa) << " n=" << n;
      EXPECT_TRUE(bytes_equal(chunk.val, baseline.val))
          << "kept values differ on " << util::isa_name(isa) << " n=" << n;
      EXPECT_TRUE(bytes_equal(residual, residual_baseline))
          << "residual differs on " << util::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdSelect, KthKeyByteIdenticalAcrossIsas) {
  const std::size_t sizes[] = {300, 50000};
  for (std::size_t n : sizes) {
    const auto values = edge_values(n, 113 + n);
    for (std::size_t k : {std::size_t{1}, n / 7 + 1, n}) {
      std::uint32_t baseline;
      {
        util::ForcedIsaScope forced(Isa::kScalar);
        sparse::SparsifyWorkspace ws;
        baseline = ws.kth_key(values, k);
      }
      for (Isa isa : supported_isas()) {
        util::ForcedIsaScope forced(isa);
        sparse::SparsifyWorkspace ws;
        EXPECT_EQ(ws.kth_key(values, k), baseline)
            << util::isa_name(isa) << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(SimdQuantize, TernaryByteIdenticalAcrossIsas) {
  // The dispatched piece is the max_abs_finite scale scan; the Bernoulli
  // draws consume the (seeded) Rng in element order on every path, so the
  // whole wire payload must be byte-identical across ISAs.
  for (std::size_t n : {std::size_t{37}, std::size_t{4096}}) {
    auto values = edge_values(n, 127 + n);
    sparse::TernaryLayer baseline;
    {
      util::ForcedIsaScope forced(Isa::kScalar);
      util::Rng rng(5);
      baseline = sparse::ternary_quantize(3, values, rng);
    }
    for (Isa isa : supported_isas()) {
      util::ForcedIsaScope forced(isa);
      util::Rng rng(5);
      const sparse::TernaryLayer got = sparse::ternary_quantize(3, values, rng);
      EXPECT_EQ(std::bit_cast<std::uint32_t>(got.scale),
                std::bit_cast<std::uint32_t>(baseline.scale))
          << util::isa_name(isa) << " n=" << n;
      EXPECT_EQ(got.packed, baseline.packed)
          << util::isa_name(isa) << " n=" << n;
    }
  }
}

// ----------------------------------------------- GEMM oracle + threads

struct GemmShape {
  std::size_t m, k, n;
};

/// Per-element error bound vs the double-accumulation oracle (same bound
/// as tests/test_util.cpp): 16 * eps * sqrt(k) * sum_p |a_ip * b_pj|.
void expect_oracle_bounded(const GemmShape& s, std::span<const float> a,
                           std::span<const float> b,
                           std::span<const float> got,
                           std::span<const float> want, const char* what) {
  const float eps = std::numeric_limits<float>::epsilon();
  const float scale = 16.0f * eps * std::sqrt(static_cast<float>(s.k));
  for (std::size_t i = 0; i < s.m; ++i) {
    for (std::size_t j = 0; j < s.n; ++j) {
      double mag = 0.0;
      for (std::size_t p = 0; p < s.k; ++p)
        mag += std::abs(static_cast<double>(a[i * s.k + p]) * b[p * s.n + j]);
      const float tol = scale * static_cast<float>(mag) +
                        4 * std::numeric_limits<float>::denorm_min();
      ASSERT_NEAR(got[i * s.n + j], want[i * s.n + j], tol)
          << what << " (" << s.m << "x" << s.k << "x" << s.n << ") at ("
          << i << "," << j << ")";
    }
  }
}

constexpr GemmShape kGemmShapes[] = {
    {64, 576, 96},  // conv-like, multiple full row blocks and panels
    {17, 300, 23},  // ragged everything: tail rows, partial panel, two kc
    {3, 5, 7},      // smaller than one register tile on every path
    {1, 257, 1},    // single output element, k crosses one kc boundary
};

TEST(SimdGemm, AllVariantsOracleBoundedOnEveryIsa) {
  for (const GemmShape& s : kGemmShapes) {
    const auto a = finite_values(s.m * s.k, 1000 + s.m);
    const auto b = finite_values(s.k * s.n, 2000 + s.n);
    std::vector<float> want(s.m * s.n), got(s.m * s.n);

    for (Isa isa : supported_isas()) {
      util::ForcedIsaScope forced(isa);

      util::reference::gemm(s.m, s.k, s.n, a.data(), b.data(), want.data(),
                            false);
      util::gemm(s.m, s.k, s.n, a.data(), b.data(), got.data(), false);
      expect_oracle_bounded(s, a, b, got, want, util::isa_name(isa));

      // A^T layout: reuse `a` as the [k x m] operand.
      const auto at = finite_values(s.k * s.m, 3000 + s.k);
      util::reference::gemm_at(s.m, s.k, s.n, at.data(), b.data(),
                               want.data(), false);
      util::gemm_at(s.m, s.k, s.n, at.data(), b.data(), got.data(), false);
      expect_oracle_bounded(s, a, b, got, want, util::isa_name(isa));

      // B^T layout plus accumulate=true in the same check.
      const auto bt = finite_values(s.n * s.k, 4000 + s.k);
      const auto c0 = finite_values(s.m * s.n, 5000 + s.m);
      want = c0;
      util::reference::gemm_bt(s.m, s.k, s.n, a.data(), bt.data(),
                               want.data(), true);
      got = c0;
      util::gemm_bt(s.m, s.k, s.n, a.data(), bt.data(), got.data(), true);
      expect_oracle_bounded(s, a, b, got, want, util::isa_name(isa));
    }
  }
}

TEST(SimdGemm, BitwiseDeterministicAcrossThreadBudgetsPerIsa) {
  // The determinism contract (gemm.h): within one ISA path the result is
  // bitwise identical for any intra-op budget and any row/panel
  // partition. The second shape's n (4096 columns = 128 panels) crosses
  // the parallel-pack threshold, so the ParallelFor-packed panels are
  // covered, not just the row partition.
  const GemmShape shapes[] = {{17, 300, 23}, {8, 300, 4096}};
  for (const GemmShape& s : shapes) {
    const auto a = finite_values(s.m * s.k, 6000 + s.n);
    const auto b = finite_values(s.k * s.n, 7000 + s.n);
    for (Isa isa : supported_isas()) {
      util::ForcedIsaScope forced(isa);
      std::vector<float> single(s.m * s.n);
      {
        util::IntraOpBudgetScope budget(1);
        util::gemm(s.m, s.k, s.n, a.data(), b.data(), single.data(), false);
      }
      for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        util::IntraOpBudgetScope budget(threads);
        std::vector<float> threaded(s.m * s.n);
        util::gemm(s.m, s.k, s.n, a.data(), b.data(), threaded.data(), false);
        EXPECT_TRUE(bytes_equal(threaded, single))
            << util::isa_name(isa) << " " << threads << " threads ("
            << s.m << "x" << s.k << "x" << s.n << ")";
      }
    }
  }
}

// ------------------------------------------------ dispatch allocations

TEST(SimdDispatch, DispatchedKernelsAllocationFreeWhenWarm) {
  // Table dispatch is a load + indirect call; after the first resolution
  // (and warmed scratch) none of the dispatched entry points may allocate.
  std::vector<float> x = finite_values(4096, 17);
  std::vector<float> y = finite_values(4096, 19);
  const std::uint32_t key = sparse::magnitude_key(0.5f);

  (void)util::active_isa();  // resolve before counting
  util::axpy(0.5f, x, y);
  (void)util::amax(x);
  (void)util::max_abs_finite(x);
  (void)sparse::count_ge_key(x, key);
  (void)sparse::count_zeros(x);

  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (int round = 0; round < 8; ++round) {
    util::axpy(0.5f, x, y);
    util::axpby(0.1f, x, 0.9f, y);
    util::scale(1.001f, y);
    (void)util::amax(x);
    (void)util::max_abs_finite(x);
    (void)sparse::count_ge_key(x, key);
    (void)sparse::count_zeros(x);
    (void)util::active_isa();
  }
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "dispatched kernels allocated on the warm path";
}

}  // namespace
