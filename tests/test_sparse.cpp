// Unit + property tests for the sparsification substrate: top-k selection,
// sparsify/unsparsify partitioning, COO chunks and the wire codec.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sparse/codec.h"
#include "sparse/coo.h"
#include "sparse/topk.h"
#include "util/rng.h"

namespace {

using namespace dgs::sparse;

// ------------------------------------------------------------------- top-k

TEST(TopK, KeepCountBounds) {
  EXPECT_EQ(keep_count(0, 1.0), 0u);
  EXPECT_EQ(keep_count(1000, 1.0), 10u);
  EXPECT_EQ(keep_count(1000, 100.0), 1000u);
  EXPECT_EQ(keep_count(10, 0.0001), 1u);  // at least one entry
  EXPECT_EQ(keep_count(3, 100.0), 3u);
}

TEST(TopK, KthLargestMagnitudeExact) {
  std::vector<float> v{-5, 1, 3, -2, 4};
  EXPECT_FLOAT_EQ(kth_largest_magnitude(v, 1), 5.0f);
  EXPECT_FLOAT_EQ(kth_largest_magnitude(v, 2), 4.0f);
  EXPECT_FLOAT_EQ(kth_largest_magnitude(v, 5), 1.0f);
}

TEST(TopK, ThresholdKeepsRequestedFraction) {
  dgs::util::Rng rng(1);
  std::vector<float> v(10000);
  for (auto& x : v) x = rng.normal(0, 1);
  const float thr = topk_threshold(v, 1.0);
  const std::size_t kept = count_above(v, thr);
  // >= k by construction; ties in continuous data are measure-zero.
  EXPECT_EQ(kept, keep_count(v.size(), 1.0));
}

TEST(TopK, FullRatioKeepsEverything) {
  std::vector<float> v{0.0f, -1.0f, 0.5f, 0.0f};
  const float thr = topk_threshold(v, 100.0);
  EXPECT_EQ(count_above(v, thr), v.size());
}

TEST(TopK, EmptyInput) {
  EXPECT_FLOAT_EQ(topk_threshold({}, 1.0), 0.0f);
  EXPECT_FLOAT_EQ(kth_largest_magnitude({}, 3), 0.0f);
}

TEST(TopK, SampledThresholdApproximatesExact) {
  dgs::util::Rng rng(2);
  std::vector<float> v(100000);
  for (auto& x : v) x = rng.normal(0, 1);
  dgs::util::Rng sample_rng(3);
  const float exact = topk_threshold(v, 5.0);
  const float approx = sampled_topk_threshold(v, 5.0, 2000, sample_rng);
  EXPECT_NEAR(approx, exact, 0.15f);
}

TEST(TopK, SampledFallsBackToExactForSmallInput) {
  std::vector<float> v{1, 2, 3, 4};
  dgs::util::Rng rng(4);
  EXPECT_FLOAT_EQ(sampled_topk_threshold(v, 50.0, 100, rng),
                  topk_threshold(v, 50.0));
}

// --------------------------------------------------------------- sparsify

TEST(Coo, ExtractAndZeroPartitionsVector) {
  std::vector<float> v{5, -1, 0.5f, -6, 2};
  LayerChunk chunk = extract_and_zero(3, v, 2.0f);
  EXPECT_EQ(chunk.layer, 3u);
  EXPECT_EQ(chunk.dense_size, 5u);
  ASSERT_EQ(chunk.nnz(), 3u);
  EXPECT_EQ(chunk.idx[0], 0u);
  EXPECT_FLOAT_EQ(chunk.val[0], 5.0f);
  EXPECT_EQ(chunk.idx[1], 3u);
  EXPECT_FLOAT_EQ(chunk.val[1], -6.0f);
  // Extracted entries zeroed, the rest untouched.
  EXPECT_FLOAT_EQ(v[0], 0.0f);
  EXPECT_FLOAT_EQ(v[1], -1.0f);
  EXPECT_FLOAT_EQ(v[3], 0.0f);
}

TEST(Coo, ExtractCopyLeavesInputIntact) {
  std::vector<float> v{5, -1, 0.5f};
  const std::vector<float> orig = v;
  LayerChunk chunk = extract_copy(1, v, 2.0f);
  EXPECT_EQ(chunk.nnz(), 1u);
  EXPECT_EQ(v, orig);
}

TEST(Coo, ExactZerosNeverExtracted) {
  std::vector<float> v{0.0f, 0.0f, 1.0f};
  LayerChunk chunk = extract_and_zero(0, v, 0.0f);
  EXPECT_EQ(chunk.nnz(), 1u);
  EXPECT_EQ(chunk.idx[0], 2u);
}

TEST(Coo, ScaleBelowOnlyTouchesSubThreshold) {
  std::vector<float> v{5, -1, 2};
  scale_below(v, 2.0f, 10.0f);
  EXPECT_FLOAT_EQ(v[0], 5.0f);
  EXPECT_FLOAT_EQ(v[1], -10.0f);
  EXPECT_FLOAT_EQ(v[2], 2.0f);  // |2| >= 2 untouched
}

TEST(Coo, ScatterAddAndDensifyRoundTrip) {
  LayerChunk chunk;
  chunk.layer = 0;
  chunk.dense_size = 4;
  chunk.idx = {1, 3};
  chunk.val = {2.0f, -3.0f};
  std::vector<float> dst(4, 1.0f);
  scatter_add(chunk, 2.0f, dst);
  EXPECT_FLOAT_EQ(dst[0], 1.0f);
  EXPECT_FLOAT_EQ(dst[1], 5.0f);
  EXPECT_FLOAT_EQ(dst[3], -5.0f);

  const auto dense = densify(chunk);
  EXPECT_FLOAT_EQ(dense[1], 2.0f);
  EXPECT_FLOAT_EQ(dense[0], 0.0f);
}

TEST(Coo, ScatterAddSizeMismatchThrows) {
  LayerChunk chunk;
  chunk.dense_size = 4;
  std::vector<float> dst(3);
  EXPECT_THROW(scatter_add(chunk, 1.0f, dst), std::invalid_argument);
}

// Property: extract + scale_below covers every entry exactly once.
TEST(Coo, ExtractScalePartitionProperty) {
  dgs::util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> v(200);
    for (auto& x : v) x = rng.normal(0, 1);
    std::vector<float> orig = v;
    const float thr = topk_threshold(v, 10.0);
    LayerChunk kept = extract_copy(0, v, thr);
    scale_below(v, thr, 2.0f);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const bool sent =
          std::find(kept.idx.begin(), kept.idx.end(), i) != kept.idx.end();
      if (sent)
        EXPECT_FLOAT_EQ(v[i], orig[i]);
      else
        EXPECT_FLOAT_EQ(v[i], 2.0f * orig[i]);
    }
  }
}

// ------------------------------------------------------------------ codec

SparseUpdate random_update(dgs::util::Rng& rng, std::size_t layers) {
  SparseUpdate u;
  for (std::size_t j = 0; j < layers; ++j) {
    LayerChunk c;
    c.layer = static_cast<std::uint32_t>(j);
    c.dense_size = 50 + static_cast<std::uint32_t>(rng.below(200));
    const std::size_t nnz = rng.below(c.dense_size);
    std::vector<std::uint32_t> all(c.dense_size);
    std::iota(all.begin(), all.end(), 0u);
    dgs::util::shuffle(all.data(), all.size(), rng);
    c.idx.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(nnz));
    for (std::size_t i = 0; i < nnz; ++i) c.val.push_back(rng.normal(0, 1));
    u.layers.push_back(std::move(c));
  }
  return u;
}

TEST(Codec, SparseRoundTripBitExact) {
  dgs::util::Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const SparseUpdate u = random_update(rng, 1 + rng.below(5));
    const Bytes bytes = encode(u);
    EXPECT_EQ(bytes.size(), encoded_size(u));
    const SparseUpdate d = decode(bytes);
    ASSERT_EQ(d.layers.size(), u.layers.size());
    for (std::size_t j = 0; j < u.layers.size(); ++j) {
      EXPECT_EQ(d.layers[j].layer, u.layers[j].layer);
      EXPECT_EQ(d.layers[j].dense_size, u.layers[j].dense_size);
      EXPECT_EQ(d.layers[j].idx, u.layers[j].idx);
      EXPECT_EQ(d.layers[j].val, u.layers[j].val);
    }
  }
}

TEST(Codec, DenseRoundTripBitExact) {
  DenseUpdate u;
  u.layers.push_back({0, {1.5f, -2.5f, 0.0f}});
  u.layers.push_back({1, {3.0f}});
  const Bytes bytes = encode(u);
  EXPECT_EQ(bytes.size(), encoded_size(u));
  const DenseUpdate d = decode_dense(bytes);
  ASSERT_EQ(d.layers.size(), 2u);
  EXPECT_EQ(d.layers[0].values, u.layers[0].values);
  EXPECT_EQ(d.layers[1].layer, 1u);
}

TEST(Codec, EncodedSizeClosedForm) {
  SparseUpdate u;
  LayerChunk c;
  c.layer = 0;
  c.dense_size = 100;
  c.idx = {1, 2, 3};
  c.val = {1, 2, 3};
  u.layers.push_back(c);
  // 8 header + 12 per-layer header + 3*(4+4) payload.
  EXPECT_EQ(encoded_size(u), 8u + 12u + 24u);
}

TEST(Codec, MagicDispatch) {
  SparseUpdate su;
  DenseUpdate du;
  EXPECT_TRUE(is_sparse_payload(encode(su)));
  EXPECT_FALSE(is_sparse_payload(encode(du)));
  EXPECT_FALSE(is_sparse_payload({}));
}

TEST(Codec, RejectsCorruptPayloads) {
  dgs::util::Rng rng(7);
  SparseUpdate u = random_update(rng, 2);
  Bytes bytes = encode(u);
  // Truncation.
  Bytes truncated(bytes.begin(), bytes.end() - 4);
  EXPECT_THROW(decode(truncated), std::runtime_error);
  // Trailing garbage.
  Bytes extended = bytes;
  extended.push_back(0);
  EXPECT_THROW(decode(extended), std::runtime_error);
  // Wrong magic.
  Bytes wrong = bytes;
  wrong[0] ^= 0xFF;
  EXPECT_THROW(decode(wrong), std::runtime_error);
}

TEST(Codec, RejectsOutOfRangeIndices) {
  SparseUpdate u;
  LayerChunk c;
  c.layer = 0;
  c.dense_size = 4;
  c.idx = {7};  // out of range
  c.val = {1.0f};
  u.layers.push_back(c);
  const Bytes bytes = encode(u);
  EXPECT_THROW(decode(bytes), std::runtime_error);
}

TEST(Codec, MismatchedIdxValThrowsOnEncode) {
  SparseUpdate u;
  LayerChunk c;
  c.layer = 0;
  c.dense_size = 4;
  c.idx = {1, 2};
  c.val = {1.0f};
  u.layers.push_back(c);
  EXPECT_THROW(encode(u), std::invalid_argument);
}

TEST(SparseUpdate, DensityAccounting) {
  SparseUpdate u;
  LayerChunk c;
  c.layer = 0;
  c.dense_size = 100;
  c.idx = {1};
  c.val = {1.0f};
  u.layers.push_back(c);
  EXPECT_DOUBLE_EQ(u.density(), 0.01);
  EXPECT_EQ(u.total_nnz(), 1u);
  EXPECT_EQ(u.total_dense(), 100u);
  EXPECT_DOUBLE_EQ(SparseUpdate{}.density(), 0.0);
}

}  // namespace
