// Fuzz-style robustness tests: every wire decoder must reject arbitrary or
// mutated byte streams with an exception — never crash, hang, or allocate
// unboundedly. The server receives payloads from the network in a real
// deployment, so decoder robustness is a safety property of the system.
#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <vector>

#include "comm/framing.h"
#include "core/payload.h"
#include "sparse/codec.h"
#include "sparse/compressor.h"
#include "sparse/quantize.h"
#include "util/rng.h"

namespace {

using namespace dgs;

sparse::Bytes random_bytes(util::Rng& rng, std::size_t max_len) {
  sparse::Bytes bytes(rng.below(max_len + 1));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

template <typename Decoder>
void expect_no_crash(Decoder&& decode, const sparse::Bytes& bytes) {
  try {
    (void)decode(bytes);
  } catch (const std::exception&) {
    // Rejection via exception is the expected outcome for garbage.
  }
}

TEST(Fuzz, RandomBytesNeverCrashAnyDecoder) {
  util::Rng rng(0xF022);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto bytes = random_bytes(rng, 256);
    expect_no_crash([](const auto& b) { return sparse::decode(b); }, bytes);
    expect_no_crash([](const auto& b) { return sparse::decode_dense(b); }, bytes);
    expect_no_crash([](const auto& b) { return sparse::decode_ternary(b); },
                    bytes);
    expect_no_crash([](const auto& b) { return sparse::decode_sparse_ternary(b); },
                    bytes);
    expect_no_crash([](const auto& b) { return sparse::decode_quantized(b); },
                    bytes);
    expect_no_crash([](const auto& b) { return sparse::decode_sbc(b); }, bytes);
    expect_no_crash([](const auto& b) { return sparse::decode_any(b); }, bytes);
  }
}

TEST(Fuzz, RandomBytesWithValidMagicNeverCrashRegistry) {
  // Random bodies behind each registered magic word exercise the per-format
  // validation paths that pure random bytes rarely reach past the magic.
  const std::uint32_t magics[] = {
      sparse::kSparseMagic,  sparse::kDenseMagic,
      sparse::kTernaryMagic, sparse::kSparseTernaryMagic,
      sparse::kQuantMagic,   sparse::kSbcMagic,
  };
  util::Rng rng(0xF026);
  for (int trial = 0; trial < 3000; ++trial) {
    sparse::Bytes bytes = random_bytes(rng, 192);
    const std::uint32_t magic = magics[rng.below(std::size(magics))];
    if (bytes.size() < 4) bytes.resize(4);
    std::memcpy(bytes.data(), &magic, 4);
    expect_no_crash([](const auto& b) { return sparse::decode_any(b); }, bytes);
  }
}

TEST(Fuzz, MutatedValidPayloadsNeverCrash) {
  util::Rng rng(0xF023);
  // Start from a valid sparse payload and flip random bytes.
  sparse::SparseUpdate update;
  sparse::LayerChunk chunk;
  chunk.layer = 0;
  chunk.dense_size = 64;
  for (std::uint32_t i = 0; i < 16; ++i) {
    chunk.idx.push_back(4 * i);
    chunk.val.push_back(rng.normal(0, 1));
  }
  update.layers.push_back(chunk);
  const sparse::Bytes valid = sparse::encode(update);

  for (int trial = 0; trial < 2000; ++trial) {
    sparse::Bytes mutated = valid;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f)
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      const auto decoded = sparse::decode(mutated);
      // If it decodes, the invariants the codec promises must still hold.
      for (const auto& c : decoded.layers) {
        ASSERT_EQ(c.idx.size(), c.val.size());
        for (std::uint32_t i : c.idx) ASSERT_LT(i, c.dense_size);
      }
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, TruncationSweepAlwaysThrowsCleanly) {
  util::Rng rng(0xF024);
  sparse::DenseUpdate update;
  update.layers.push_back({0, std::vector<float>(33, 1.5f)});
  const sparse::Bytes valid = sparse::encode(update);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const sparse::Bytes truncated(valid.begin(),
                                  valid.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)sparse::decode_dense(truncated), std::runtime_error)
        << "length " << len;
  }
}

TEST(Fuzz, PayloadDispatchSurvivesGarbage) {
  util::Rng rng(0xF025);
  core::LayeredVec target = core::make_layered({32, 8});
  for (int trial = 0; trial < 2000; ++trial) {
    const auto bytes = random_bytes(rng, 128);
    try {
      core::apply_update_payload(bytes, target, 1.0f);
    } catch (const std::exception&) {
    }
  }
  // Target stays structurally intact.
  ASSERT_EQ(target.size(), 2u);
  EXPECT_EQ(target[0].size(), 32u);
  EXPECT_EQ(target[1].size(), 8u);
}

TEST(Fuzz, HugeDeclaredSizesAreRejectedNotAllocated) {
  // A payload claiming a gigantic nnz must fail the bounds check before any
  // allocation of that size is attempted (nnz > dense_size is invalid).
  sparse::Bytes bytes;
  auto put_u32 = [&](std::uint32_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), b, b + 4);
  };
  put_u32(sparse::kSparseMagic);
  put_u32(1);           // one layer
  put_u32(0);           // layer id
  put_u32(100);         // dense_size
  put_u32(0xFFFFFFFF);  // absurd nnz
  EXPECT_THROW((void)sparse::decode(bytes), std::runtime_error);

  // Same for the sparse-ternary format.
  bytes.clear();
  put_u32(sparse::kSparseTernaryMagic);
  put_u32(1);
  put_u32(0);
  put_u32(100);
  put_u32(0xFFFFFFFF);
  put_u32(0);  // scale bits
  EXPECT_THROW((void)sparse::decode_sparse_ternary(bytes), std::runtime_error);

  // Quantized format: absurd nnz trips the nnz > dense_size check before
  // the index array is sized.
  bytes.clear();
  put_u32(sparse::kQuantMagic);
  bytes.push_back(sparse::kQuantVersion);
  bytes.push_back(8);  // bit width
  bytes.push_back(0);
  bytes.push_back(0);  // reserved u16
  put_u32(1);          // one layer
  put_u32(0);          // layer id
  put_u32(100);        // dense_size
  put_u32(0xFFFFFFFF); // absurd nnz
  bytes.insert(bytes.end(), {0, 0, 0, 0});  // scale f32 = 0
  bytes.insert(bytes.end(), {0, 0, 0, 0});  // layout + reserved
  EXPECT_THROW((void)sparse::decode_quantized(bytes), std::runtime_error);

  // SBC: a huge declared layer count must be caught by the remaining-bytes
  // bound, not reserve gigabytes.
  bytes.clear();
  put_u32(sparse::kSbcMagic);
  bytes.push_back(sparse::kSbcVersion);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  put_u32(0xFFFFFFFF);  // absurd num_layers
  EXPECT_THROW((void)sparse::decode_sbc(bytes), std::runtime_error);
}

/// Build one valid payload per lossy format for mutation/truncation sweeps.
sparse::Bytes valid_payload(sparse::Codec codec) {
  util::Rng rng(0xF027);
  sparse::SparseUpdate update;
  sparse::LayerChunk chunk;
  chunk.layer = 1;
  chunk.dense_size = 512;
  for (std::uint32_t i = 0; i < 512; i += 1 + rng.below(20)) {
    chunk.idx.push_back(i);
    chunk.val.push_back(rng.normal(0, 1));
  }
  const auto& stage = sparse::compressor_for(codec);
  stage.transform(chunk);
  update.layers.push_back(std::move(chunk));
  return stage.encode(update);
}

TEST(Fuzz, QuantizedTruncationSweepAlwaysThrowsCleanly) {
  const sparse::Bytes valid = valid_payload(sparse::Codec::kQcoo8);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const sparse::Bytes truncated(
        valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)sparse::decode_quantized(truncated), std::runtime_error)
        << "length " << len;
  }
}

TEST(Fuzz, SbcTruncationSweepAlwaysThrowsCleanly) {
  // Every prefix of a valid DGSB payload — including mid-header, mid-sign-
  // bitmap and mid-Rice-stream cuts — must throw, never return a partial
  // update or over-read.
  const sparse::Bytes valid = valid_payload(sparse::Codec::kSbc);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const sparse::Bytes truncated(
        valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)sparse::decode_sbc(truncated), std::runtime_error)
        << "length " << len;
  }
}

TEST(Fuzz, MutatedLossyPayloadsKeepDecoderInvariants) {
  util::Rng rng(0xF028);
  for (const sparse::Codec codec :
       {sparse::Codec::kQcoo8, sparse::Codec::kQcoo4, sparse::Codec::kSbc}) {
    const sparse::Bytes valid = valid_payload(codec);
    for (int trial = 0; trial < 1500; ++trial) {
      sparse::Bytes mutated = valid;
      const std::size_t flips = 1 + rng.below(4);
      for (std::size_t f = 0; f < flips; ++f)
        mutated[rng.below(mutated.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      try {
        const auto decoded = sparse::decode_any(mutated);
        for (const auto& segment : decoded) {
          if (!segment.sparse) continue;
          ASSERT_EQ(segment.chunk.idx.size(), segment.chunk.val.size());
          for (std::uint32_t i : segment.chunk.idx)
            ASSERT_LT(i, segment.chunk.dense_size);
        }
      } catch (const std::exception&) {
      }
    }
  }
}


// ------------------------------------------------------------ wire framing

/// Frame a message exactly as the socket transport would: 64-byte header
/// followed by the payload verbatim.
std::vector<std::uint8_t> frame_bytes(const comm::Message& msg) {
  std::vector<std::uint8_t> out(comm::framed_size(msg));
  comm::encode_frame_header(msg, /*send_ns=*/0, out.data());
  std::memcpy(out.data() + comm::kFrameHeaderBytes, msg.payload.data(),
              msg.payload.size());
  return out;
}

TEST(Fuzz, RandomByteStreamsNeverCrashFrameDecoder) {
  // Arbitrary bytes in arbitrary chunk sizes: the decoder must either
  // surface messages or throw FramingError — never crash, hang, or
  // allocate past the wire cap. A FramingError poisons the stream, so a
  // fresh decoder replaces the poisoned one (exactly what the transport
  // does by dropping the connection).
  util::Rng rng(0xF029);
  comm::FrameDecoder decoder;
  std::size_t poisoned = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<std::uint8_t> bytes(1 + rng.below(96));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      decoder.feed(bytes);
      comm::Message msg;
      while (decoder.next(msg)) {
        ASSERT_LE(msg.payload.size(), sparse::kMaxWirePayloadBytes);
      }
    } catch (const comm::FramingError&) {
      decoder = comm::FrameDecoder{};
      ++poisoned;
    }
  }
  // Random bytes essentially never spell the 'DGSF' magic, so nearly every
  // header completion must have poisoned the stream at least once.
  EXPECT_GT(poisoned, 0u);
}

TEST(Fuzz, MutatedFrameHeadersNeverCrashOrOverAllocate) {
  // Start from a valid frame and flip random bits anywhere in it. The
  // decoder either rejects the header (FramingError) or produces exactly
  // one message whose payload length matches the (possibly mutated, but
  // cap-checked) declared length.
  util::Rng rng(0xF02A);
  comm::Message msg;
  msg.kind = comm::MessageKind::kGradientPush;
  msg.worker_id = 2;
  msg.seq = 41;
  msg.payload.resize(256);
  for (auto& b : msg.payload) b = static_cast<std::uint8_t>(rng.below(256));
  const auto valid = frame_bytes(msg);

  for (int trial = 0; trial < 3000; ++trial) {
    auto mutated = valid;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f)
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    comm::FrameDecoder decoder;
    try {
      decoder.feed(mutated);
      comm::Message got;
      while (decoder.next(got))
        ASSERT_LE(got.payload.size(), sparse::kMaxWirePayloadBytes);
    } catch (const comm::FramingError&) {
    }
  }
}

TEST(Fuzz, TruncatedFrameStreamNeverFabricatesAMessage) {
  // Every strict prefix of a valid frame must leave the decoder mid-frame
  // with nothing in the ready queue — a half-received message must never
  // be surfaced.
  comm::Message msg;
  msg.kind = comm::MessageKind::kModelDiff;
  msg.worker_id = 1;
  msg.seq = 9;
  msg.payload.assign(73, std::uint8_t{0xAB});
  const auto valid = frame_bytes(msg);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    comm::FrameDecoder decoder;
    decoder.feed({valid.data(), len});
    comm::Message got;
    EXPECT_FALSE(decoder.next(got)) << "prefix length " << len;
    if (len > 0) {
      EXPECT_TRUE(decoder.mid_frame()) << "prefix length " << len;
    }
  }
}

TEST(Fuzz, SbcUnaryBombIsRejectedQuickly) {
  // A Rice stream of solid 0xFF encodes an endless unary run. The decoder
  // caps the run at dense_size >> k, so the bomb dies in bounded work
  // instead of spinning through the whole declared stream.
  sparse::Bytes bytes;
  auto put_u32 = [&](std::uint32_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), b, b + 4);
  };
  put_u32(sparse::kSbcMagic);
  bytes.push_back(sparse::kSbcVersion);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  put_u32(1);        // one layer
  put_u32(0);        // layer id
  put_u32(1u << 20); // dense_size
  put_u32(64);       // nnz
  put_u32(0);        // mu bits (0.0f)
  bytes.push_back(0);  // rice k = 0
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  put_u32(1u << 16);                   // stream_bytes: 64 KiB of 0xFF
  bytes.insert(bytes.end(), 8, 0x00);  // sign bitmap for nnz=64
  bytes.insert(bytes.end(), 1u << 16, 0xFF);
  EXPECT_THROW((void)sparse::decode_sbc(bytes), std::runtime_error);
}

}  // namespace
