// Unit tests for the Worker context: schedule injection, density metrics,
// model overwrite, construction errors and the encode path.
#include <gtest/gtest.h>

#include "core/engine_sim.h"
#include "core/server.h"
#include "core/worker.h"
#include "data/synthetic.h"

namespace {

using namespace dgs;
using core::Method;

data::SyntheticDataset tiny_data(std::uint64_t seed = 61) {
  data::SyntheticSpec spec = data::SyntheticSpec::synth_cifar(seed);
  spec.num_train = 128;
  spec.num_test = 64;
  return data::make_synthetic(spec);
}

core::TrainConfig tiny_config(Method method) {
  core::TrainConfig config;
  config.method = method;
  config.num_workers = 1;
  config.batch_size = 8;
  config.lr = 0.1;
  config.momentum = 0.7;
  config.seed = 63;
  return config;
}

TEST(Worker, RejectsFeatureDimMismatch) {
  const auto data = tiny_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim() + 1, {8},
                                       data.train->num_classes());
  const auto config = tiny_config(Method::kASGD);
  const auto theta0 = core::initial_parameters(spec, 1);
  EXPECT_THROW(core::Worker(0, spec, data.train, config, theta0),
               std::invalid_argument);
}

TEST(Worker, StartsFromProvidedParameters) {
  const auto data = tiny_data();
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {8}, data.train->num_classes());
  const auto config = tiny_config(Method::kDGS);
  const auto theta0 = core::initial_parameters(spec, 7);
  core::Worker worker(0, spec, data.train, config, theta0);
  EXPECT_EQ(worker.model_flat(), theta0);
}

TEST(Worker, SetModelOverwrites) {
  const auto data = tiny_data();
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {8}, data.train->num_classes());
  const auto config = tiny_config(Method::kDGS);
  const auto theta0 = core::initial_parameters(spec, 7);
  core::Worker worker(0, spec, data.train, config, theta0);
  std::vector<float> other(theta0.size(), 0.25f);
  worker.set_model(other);
  EXPECT_EQ(worker.model_flat(), other);
}

TEST(Worker, InjectedLearningRateScalesAsgdPush) {
  const auto data = tiny_data();
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {8}, data.train->num_classes());
  const auto config = tiny_config(Method::kASGD);
  const auto theta0 = core::initial_parameters(spec, 9);
  core::Worker a(0, spec, data.train, config, theta0);
  core::Worker b(0, spec, data.train, config, theta0);
  // Same batch (same worker id/seed), different injected lr.
  const auto push_a = a.compute_and_pack(0.1f, 0);
  const auto push_b = b.compute_and_pack(0.2f, 0);
  const auto ga = sparse::decode_dense(push_a.push.payload);
  const auto gb = sparse::decode_dense(push_b.push.payload);
  ASSERT_EQ(ga.layers.size(), gb.layers.size());
  for (std::size_t j = 0; j < ga.layers.size(); ++j)
    for (std::size_t i = 0; i < ga.layers[j].values.size(); ++i)
      ASSERT_NEAR(2.0f * ga.layers[j].values[i], gb.layers[j].values[i], 1e-6f);
}

TEST(Worker, DensityReflectsSparsification) {
  const auto data = tiny_data();
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {32}, data.train->num_classes());
  const auto theta0 = core::initial_parameters(spec, 11);

  auto dense_config = tiny_config(Method::kASGD);
  core::Worker dense(0, spec, data.train, dense_config, theta0);
  const auto dense_iter = dense.compute_and_pack();
  EXPECT_GT(dense_iter.update_density, 0.9);

  auto sparse_config = tiny_config(Method::kDGS);
  sparse_config.compression.ratio_percent = 1.0;
  core::Worker sparsified(0, spec, data.train, sparse_config, theta0);
  const auto sparse_iter = sparsified.compute_and_pack();
  EXPECT_LT(sparse_iter.update_density, 0.05);
  EXPECT_GT(sparse_iter.update_density, 0.0);
}

TEST(Worker, LocalStepAdvances) {
  const auto data = tiny_data();
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {8}, data.train->num_classes());
  const auto config = tiny_config(Method::kGDAsync);
  const auto theta0 = core::initial_parameters(spec, 13);
  core::Worker worker(0, spec, data.train, config, theta0);
  EXPECT_EQ(worker.local_step(), 0u);
  (void)worker.compute_and_pack();
  (void)worker.compute_and_pack();
  EXPECT_EQ(worker.local_step(), 2u);
}

TEST(Worker, AppliesOnlyModelDiffMessages) {
  const auto data = tiny_data();
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {8}, data.train->num_classes());
  const auto config = tiny_config(Method::kDGS);
  const auto theta0 = core::initial_parameters(spec, 15);
  core::Worker worker(0, spec, data.train, config, theta0);
  auto iter = worker.compute_and_pack();
  // A push message is not a valid reply.
  EXPECT_THROW(worker.apply_model_diff(iter.push), std::invalid_argument);
}

TEST(Worker, KnownServerStepTracksReplies) {
  const auto data = tiny_data();
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {8}, data.train->num_classes());
  const auto config = tiny_config(Method::kDGS);
  const auto theta0 = core::initial_parameters(spec, 17);
  core::Worker worker(0, spec, data.train, config, theta0);
  nn::ModulePtr probe = spec.build();
  core::ParameterServer server(nn::param_layer_sizes(probe->parameters()),
                               theta0, {.num_workers = 1});
  EXPECT_EQ(worker.known_server_step(), 0u);
  auto iter = worker.compute_and_pack();
  const auto reply = server.handle_push(iter.push);
  worker.apply_model_diff(reply);
  EXPECT_EQ(worker.known_server_step(), 1u);
}

}  // namespace
