// Tests for the checkpoint format: round-trips, corruption handling, and a
// save -> load -> resume integration path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/checkpoint.h"
#include "core/evaluator.h"
#include "core/payload.h"
#include "core/server.h"
#include "core/session.h"
#include "core/worker.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace {

using namespace dgs;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

core::Checkpoint random_checkpoint(std::uint64_t seed) {
  util::Rng rng(seed);
  core::Checkpoint c;
  c.step = 42;
  c.accuracy = 0.93;
  c.layers.resize(3);
  c.layers[0].resize(100);
  c.layers[1].resize(7);
  c.layers[2].resize(31);
  for (auto& layer : c.layers)
    for (auto& v : layer) v = rng.normal(0, 1);
  return c;
}

TEST(Checkpoint, RoundTripBitExact) {
  const auto path = temp_path("roundtrip.ckpt");
  const core::Checkpoint original = random_checkpoint(1);
  core::save_checkpoint(original, path);
  const core::Checkpoint loaded = core::load_checkpoint(path);
  EXPECT_EQ(loaded.step, original.step);
  EXPECT_DOUBLE_EQ(loaded.accuracy, original.accuracy);
  ASSERT_EQ(loaded.layers.size(), original.layers.size());
  for (std::size_t j = 0; j < loaded.layers.size(); ++j)
    EXPECT_EQ(loaded.layers[j], original.layers[j]);
}

TEST(Checkpoint, FlatAndFromFlatAreInverse) {
  const core::Checkpoint original = random_checkpoint(2);
  const auto flat = original.flat();
  const auto rebuilt =
      core::Checkpoint::from_flat(flat, {100, 7, 31}, original.step, 0.93);
  ASSERT_EQ(rebuilt.layers.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_EQ(rebuilt.layers[j], original.layers[j]);
  EXPECT_THROW(core::Checkpoint::from_flat(flat, {100, 7}, 0, 0),
               std::invalid_argument);
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(core::load_checkpoint("/nonexistent/dir/x.ckpt"),
               std::runtime_error);
}

TEST(Checkpoint, CorruptedFilesRejected) {
  const auto path = temp_path("corrupt.ckpt");
  core::save_checkpoint(random_checkpoint(3), path);

  // Truncate.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 10));
  }
  EXPECT_THROW(core::load_checkpoint(path), std::runtime_error);

  // Bad magic.
  core::save_checkpoint(random_checkpoint(3), path);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.put('X');
  }
  EXPECT_THROW(core::load_checkpoint(path), std::runtime_error);

  // Trailing garbage.
  core::save_checkpoint(random_checkpoint(3), path);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.put('Z');
  }
  EXPECT_THROW(core::load_checkpoint(path), std::runtime_error);
}

// Save a trained model, reload it, and verify the evaluation matches.
TEST(Checkpoint, SaveLoadEvaluateIntegration) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(41);
  dspec.num_train = 512;
  dspec.num_test = 256;
  const auto data = data::make_synthetic(dspec);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {32},
                                       data.train->num_classes());

  core::TrainConfig config;
  config.method = core::Method::kDGS;
  config.num_workers = 2;
  config.batch_size = 16;
  config.epochs = 3;
  config.lr = 0.02;
  config.seed = 43;

  // Train, checkpoint the final global model, reload and re-evaluate.
  const auto result = core::SimEngine(spec, data.train, data.test, config).run();
  ASSERT_FALSE(result.final_model.empty());
  nn::ModulePtr probe = spec.build();
  const auto sizes = nn::param_layer_sizes(probe->parameters());

  const auto path = temp_path("model.ckpt");
  core::save_checkpoint(
      core::Checkpoint::from_flat(result.final_model, sizes,
                                  result.server_steps,
                                  result.final_test_accuracy),
      path);
  const auto loaded = core::load_checkpoint(path);
  EXPECT_EQ(loaded.flat(), result.final_model);
  EXPECT_EQ(loaded.step, result.server_steps);

  core::Evaluator evaluator(spec, data.test);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(loaded.flat()).accuracy,
                   result.final_test_accuracy);
}

// Warm start: resuming from a checkpoint continues improving and beats a
// fresh run of the same (short) length.
TEST(Checkpoint, WarmStartResumesTraining) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(47);
  dspec.num_train = 512;
  dspec.num_test = 256;
  const auto data = data::make_synthetic(dspec);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {32},
                                       data.train->num_classes());

  core::TrainConfig config;
  config.method = core::Method::kDGS;
  config.num_workers = 2;
  config.batch_size = 16;
  config.epochs = 3;
  config.lr = 0.02;
  config.seed = 49;

  const auto first = core::SimEngine(spec, data.train, data.test, config).run();

  // Round-trip the model through a checkpoint file, then resume.
  const auto path = temp_path("resume.ckpt");
  nn::ModulePtr probe = spec.build();
  core::save_checkpoint(
      core::Checkpoint::from_flat(first.final_model,
                                  nn::param_layer_sizes(probe->parameters())),
      path);
  config.warm_start = core::load_checkpoint(path).flat();
  const auto resumed = core::SimEngine(spec, data.train, data.test, config).run();

  EXPECT_GT(resumed.final_test_accuracy, first.final_test_accuracy - 0.02)
      << "resumed run regressed";
  // Fresh 3-epoch run from scratch is well behind 6 cumulative epochs.
  EXPECT_GT(resumed.final_test_accuracy, 0.6);
}

// A rejoining (crashed) worker's first reply must be a full-model warm
// start built through the Checkpoint machinery — never a stale diff, which
// would be interpreted relative to pre-crash state the worker lost.
TEST(Checkpoint, RejoinWarmStartIsFullModelNotStaleDiff) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(53);
  dspec.num_train = 256;
  dspec.num_test = 64;
  const auto data = data::make_synthetic(dspec);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());

  core::TrainConfig config;
  config.method = core::Method::kDGS;
  config.num_workers = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.seed = 59;

  const auto theta0 = core::initial_parameters(spec, config.seed);
  nn::ModulePtr probe = spec.build();
  const auto sizes = nn::param_layer_sizes(probe->parameters());
  core::ParameterServer server(sizes, theta0, {.num_workers = 2});
  core::Worker w0(0, spec, data.train, config, theta0);
  core::Worker w1(1, spec, data.train, config, theta0);

  // Both workers train for a bit; worker 1 then "crashes" (its local state
  // is discarded below).
  std::uint64_t seq0 = 0, seq1 = 0;
  for (int iter = 0; iter < 6; ++iter) {
    core::Worker& w = iter % 2 == 0 ? w0 : w1;
    std::uint64_t& seq = iter % 2 == 0 ? seq0 : seq1;
    auto it = w.compute_and_pack();
    it.push.seq = ++seq;
    w.apply_model_diff(server.handle_push(it.push));
  }

  comm::Message request;
  request.kind = comm::MessageKind::kRejoinRequest;
  request.worker_id = 1;
  request.seq = ++seq1;
  const auto reply = server.handle_rejoin(request, /*now=*/1.0);

  ASSERT_EQ(reply.kind, comm::MessageKind::kFullModel);
  EXPECT_EQ(reply.seq, request.seq);
  EXPECT_EQ(server.rejoins(), 1u);

  // The payload is a dense snapshot of theta_t = theta_0 + M_t, and it
  // round-trips through the checkpoint format losslessly.
  const auto snapshot = core::flatten_dense_payload(reply.payload);
  const auto global = server.global_model_flat();
  ASSERT_EQ(snapshot.size(), global.size());
  for (std::size_t i = 0; i < global.size(); ++i)
    ASSERT_FLOAT_EQ(snapshot[i], global[i]) << "coordinate " << i;
  const auto ckpt =
      core::Checkpoint::from_flat(snapshot, sizes, reply.server_step);
  EXPECT_EQ(ckpt.flat(), snapshot);

  // A fresh worker warm-started from the snapshot (the engines' revive
  // path) immediately satisfies the Eq. 5 identity on its next exchange:
  // the rejoin adopted v_1 := M_t, so the next reply is a normal diff.
  core::Worker revived(1, spec, data.train, config, snapshot);
  auto it = revived.compute_and_pack();
  it.push.seq = ++seq1;
  bool duplicate = true;
  const auto diff = server.handle_push(it.push, nullptr, &duplicate);
  EXPECT_FALSE(duplicate);
  EXPECT_EQ(diff.kind, comm::MessageKind::kModelDiff);
  revived.apply_model_diff(diff);
  const auto after = server.global_model_flat();
  const auto local = revived.model_flat();
  for (std::size_t i = 0; i < after.size(); ++i)
    ASSERT_NEAR(after[i], local[i], 1e-4) << "coordinate " << i;
}

// End to end: a run that loses a worker mid-flight still produces a final
// model that checkpoints, reloads and re-evaluates identically.
TEST(Checkpoint, CrashedRunStillCheckpointsCleanly) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(61);
  dspec.num_train = 512;
  dspec.num_test = 256;
  const auto data = data::make_synthetic(dspec);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {24},
                                       data.train->num_classes());

  core::TrainConfig config;
  config.method = core::Method::kDGS;
  config.num_workers = 3;
  config.batch_size = 16;
  config.epochs = 3;
  config.lr = 0.02;
  config.seed = 67;
  config.fault.seed = 71;
  config.fault.kill_worker = 2;
  config.fault.kill_at_step = 4;

  const auto result = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_GE(result.worker_rejoins, 1u);
  ASSERT_FALSE(result.final_model.empty());

  nn::ModulePtr probe = spec.build();
  const auto path = temp_path("crashed.ckpt");
  core::save_checkpoint(
      core::Checkpoint::from_flat(result.final_model,
                                  nn::param_layer_sizes(probe->parameters()),
                                  result.server_steps,
                                  result.final_test_accuracy),
      path);
  const auto loaded = core::load_checkpoint(path);
  EXPECT_EQ(loaded.flat(), result.final_model);
  core::Evaluator evaluator(spec, data.test);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(loaded.flat()).accuracy,
                   result.final_test_accuracy);
}

}  // namespace
