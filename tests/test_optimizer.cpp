// Tests for the worker-side update algorithms, including the paper's key
// mathematical identities: SAMomentum telescoping (Eq. 16), equivalence to
// enlarged batch size (Eq. 17), momentum disappearance in naive sparse
// momentum (Eq. 12-13), and mass conservation for residual-based methods.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/optimizer.h"
#include "sparse/topk.h"
#include "util/rng.h"

namespace {

using namespace dgs::core;

GradViews views_of(const std::vector<std::vector<float>>& grads) {
  GradViews v;
  for (const auto& g : grads) v.emplace_back(g.data(), g.size());
  return v;
}

std::vector<float> densified(const dgs::sparse::SparseUpdate& u,
                             std::size_t layer) {
  return dgs::sparse::densify(u.layers.at(layer));
}

CompressionConfig ratio(double percent) {
  CompressionConfig c;
  c.ratio_percent = percent;
  return c;
}

// ------------------------------------------------------------------ DenseSgd

TEST(DenseSgd, ScalesGradientByLearningRate) {
  DenseSgd alg({3});
  const auto u = alg.step(views_of({{1, -2, 3}}), 0.5f, 0);
  const auto g = densified(u, 0);
  EXPECT_FLOAT_EQ(g[0], 0.5f);
  EXPECT_FLOAT_EQ(g[1], -1.0f);
  EXPECT_FLOAT_EQ(g[2], 1.5f);
  EXPECT_EQ(alg.state_bytes(), 0u);
  EXPECT_EQ(alg.up_codec(), dgs::sparse::Codec::kDense);
}

TEST(DenseSgd, RejectsShapeMismatch) {
  DenseSgd alg({3});
  EXPECT_THROW((void)alg.step(views_of({{1, 2}}), 0.1f, 0),
               std::invalid_argument);
  EXPECT_THROW((void)alg.step(views_of({{1, 2, 3}, {4}}), 0.1f, 0),
               std::invalid_argument);
}

// ------------------------------------------------------------- DenseMomentum

TEST(DenseMomentum, RecursionMatchesEq8) {
  DenseMomentum alg({1}, 0.5f);
  // u1 = 0.5*0 + lr*g = 0.1; u2 = 0.5*0.1 + 0.1*2 = 0.25
  auto u1 = alg.step(views_of({{1.0f}}), 0.1f, 0);
  EXPECT_FLOAT_EQ(densified(u1, 0)[0], 0.1f);
  auto u2 = alg.step(views_of({{2.0f}}), 0.1f, 0);
  EXPECT_FLOAT_EQ(densified(u2, 0)[0], 0.25f);
  EXPECT_EQ(alg.state_bytes(), sizeof(float));
}

// ---------------------------------------------------------- GradientDropping

TEST(GradientDropping, SendsTopEntriesKeepsResidual) {
  GradientDropping alg({4}, ratio(25.0));  // keep top 1 of 4
  const auto u = alg.step(views_of({{1.0f, -4.0f, 2.0f, 0.5f}}), 1.0f, 0);
  ASSERT_EQ(u.layers[0].nnz(), 1u);
  EXPECT_EQ(u.layers[0].idx[0], 1u);
  EXPECT_FLOAT_EQ(u.layers[0].val[0], -4.0f);
  // Residual holds the unsent mass.
  EXPECT_FLOAT_EQ(alg.residual()[0][0], 1.0f);
  EXPECT_FLOAT_EQ(alg.residual()[0][1], 0.0f);
  EXPECT_FLOAT_EQ(alg.residual()[0][2], 2.0f);
}

TEST(GradientDropping, ResidualAccumulatesAcrossSteps) {
  GradientDropping alg({4}, ratio(25.0));
  (void)alg.step(views_of({{1.0f, -4.0f, 2.0f, 0.5f}}), 1.0f, 0);
  // Second step: residual (1,0,2,0.5) + new grads. 2+2=4 becomes top.
  const auto u = alg.step(views_of({{0.0f, 0.0f, 2.0f, 0.0f}}), 1.0f, 0);
  ASSERT_EQ(u.layers[0].nnz(), 1u);
  EXPECT_EQ(u.layers[0].idx[0], 2u);
  EXPECT_FLOAT_EQ(u.layers[0].val[0], 4.0f);
}

// Mass conservation: over any horizon, sum(sent) + residual == lr * sum(grads).
TEST(GradientDropping, MassConservationProperty) {
  dgs::util::Rng rng(1);
  GradientDropping alg({50}, ratio(10.0));
  std::vector<double> total_grad(50, 0.0);
  std::vector<double> total_sent(50, 0.0);
  const float lr = 0.1f;
  for (int step = 0; step < 30; ++step) {
    std::vector<float> g(50);
    for (auto& v : g) v = rng.normal(0, 1);
    for (std::size_t i = 0; i < 50; ++i) total_grad[i] += lr * g[i];
    const auto u = alg.step(views_of({g}), lr, 0);
    const auto dense = densified(u, 0);
    for (std::size_t i = 0; i < 50; ++i) total_sent[i] += dense[i];
  }
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_NEAR(total_sent[i] + alg.residual()[0][i], total_grad[i], 1e-4)
        << "coordinate " << i;
}

TEST(GradientDropping, FullRatioIsPlainSgd) {
  GradientDropping alg({3}, ratio(100.0));
  const auto u = alg.step(views_of({{1, -2, 3}}), 0.5f, 0);
  const auto g = densified(u, 0);
  EXPECT_FLOAT_EQ(g[1], -1.0f);
  for (float v : alg.residual()[0]) EXPECT_EQ(v, 0.0f);
}

TEST(GradientDropping, WarmupRampsKeepRatio) {
  CompressionConfig c = ratio(1.0);
  c.warmup_epochs = 3;
  EXPECT_DOUBLE_EQ(c.ratio_at_epoch(0), 25.0);
  EXPECT_DOUBLE_EQ(c.ratio_at_epoch(1), 6.25);
  EXPECT_DOUBLE_EQ(c.ratio_at_epoch(2), 1.5625);
  EXPECT_DOUBLE_EQ(c.ratio_at_epoch(3), 1.0);
  EXPECT_DOUBLE_EQ(c.ratio_at_epoch(100), 1.0);

  GradientDropping alg({4}, c);
  // At epoch 0 the keep ratio is 25% -> exactly 1 of 4 entries.
  const auto u = alg.step(views_of({{1.0f, -4.0f, 2.0f, 0.5f}}), 1.0f, 0);
  EXPECT_EQ(u.layers[0].nnz(), 1u);
}

// ----------------------------------------------- DeepGradientCompression

TEST(Dgc, FactorMaskingZeroesVelocityWhereSent) {
  DeepGradientCompression alg({4}, ratio(25.0), 0.5f);
  (void)alg.step(views_of({{1.0f, -4.0f, 2.0f, 0.5f}}), 1.0f, 0);
  // Entry 1 was sent: velocity and residual zeroed there.
  EXPECT_FLOAT_EQ(alg.velocity()[0][1], 0.0f);
  EXPECT_FLOAT_EQ(alg.residual()[0][1], 0.0f);
  // Entry 0 not sent: velocity = lr*g = 1, residual = 1.
  EXPECT_FLOAT_EQ(alg.velocity()[0][0], 1.0f);
  EXPECT_FLOAT_EQ(alg.residual()[0][0], 1.0f);
}

TEST(Dgc, MomentumCorrectionAccumulatesVelocityIntoResidual) {
  DeepGradientCompression alg({2}, ratio(50.0), 0.5f);
  // Entry 0 gets a big gradient (always sent); entry 1 small (accumulates).
  (void)alg.step(views_of({{10.0f, 0.1f}}), 1.0f, 0);
  // residual[1] = u1 = 0.1
  EXPECT_FLOAT_EQ(alg.residual()[0][1], 0.1f);
  (void)alg.step(views_of({{10.0f, 0.1f}}), 1.0f, 0);
  // u2 = 0.5*0.1 + 0.1 = 0.15; residual = 0.1 + 0.15 = 0.25
  EXPECT_FLOAT_EQ(alg.residual()[0][1], 0.25f);
}

TEST(Dgc, GradientClippingBoundsUpdateNorm) {
  CompressionConfig c = ratio(100.0);
  c.clip_norm = 1.0;
  DeepGradientCompression alg({2}, c, 0.5f);
  const auto u = alg.step(views_of({{30.0f, 40.0f}}), 1.0f, 0);
  const auto g = densified(u, 0);
  // ||g||=50 clipped to 1 -> (0.6, 0.8).
  EXPECT_NEAR(g[0], 0.6f, 1e-5);
  EXPECT_NEAR(g[1], 0.8f, 1e-5);
}

TEST(Dgc, StateBytesCountsBothBuffers) {
  DeepGradientCompression alg({10, 20}, ratio(1.0), 0.5f);
  EXPECT_EQ(alg.state_bytes(), 2u * 30u * sizeof(float));
}

// ----------------------------------------------------------------- SAMomentum

TEST(SAMomentum, RequiresOpenUnitIntervalMomentum) {
  EXPECT_THROW(SAMomentum({4}, ratio(1.0), 0.0f), std::invalid_argument);
  EXPECT_THROW(SAMomentum({4}, ratio(1.0), 1.0f), std::invalid_argument);
  EXPECT_NO_THROW(SAMomentum({4}, ratio(1.0), 0.7f));
}

TEST(SAMomentum, SentEntriesStayResidentUnsentAreRescaled) {
  SAMomentum alg({4}, ratio(25.0), 0.5f);
  (void)alg.step(views_of({{1.0f, -4.0f, 2.0f, 0.5f}}), 1.0f, 0);
  // u after step: candidate (1,-4,2,0.5); entry 1 sent and kept; others /m.
  EXPECT_FLOAT_EQ(alg.velocity()[0][1], -4.0f);
  EXPECT_FLOAT_EQ(alg.velocity()[0][0], 2.0f);   // 1 * (1/0.5)
  EXPECT_FLOAT_EQ(alg.velocity()[0][3], 1.0f);   // 0.5 * 2
}

// Eq. 16: a component untouched by sends for T steps telescopes to
// u_{c+T} = m*u_c + lr * sum_{i=1..T} grad_i when it is finally sent.
TEST(SAMomentum, TelescopingIdentityEq16) {
  const float m = 0.7f, lr = 0.1f;
  // Layer of 2: entry 0 carries a huge gradient every step (always sent);
  // entry 1 receives small gradients and is sent only at the end.
  SAMomentum alg({2}, ratio(50.0), m);  // keep top 1 of 2

  // Warm up entry 1 with one sent step to establish u_c:
  // force entry 1 to be the big one once.
  (void)alg.step(views_of({{0.0f, 1.0f}}), lr, 0);
  const float u_c = alg.velocity()[0][1];  // = lr*1 = 0.1 (sent, kept)
  ASSERT_FLOAT_EQ(u_c, 0.1f);

  // T steps where entry 0 dominates (so entry 1 stays unsent); entry 1
  // accumulates small gradients, then receives one dominant gradient on the
  // final step so that it wins the top-k and is sent. (Sent entries stay
  // resident in u, so entry 0's velocity persists and must be out-shouted.)
  const int T = 5;
  const std::vector<float> small{0.2f, 0.2f, 0.2f, 0.2f, 1000.0f};
  for (int t = 0; t < T - 1; ++t)
    (void)alg.step(views_of({{100.0f, small[static_cast<std::size_t>(t)]}}), lr, 0);
  const auto u =
      alg.step(views_of({{0.0f, small[static_cast<std::size_t>(T - 1)]}}), lr, 0);
  const auto g = densified(u, 0);
  ASSERT_EQ(u.layers[0].nnz(), 1u);
  ASSERT_EQ(u.layers[0].idx[0], 1u);
  double expected = m * u_c;
  for (int t = 0; t < T; ++t) expected += lr * small[static_cast<std::size_t>(t)];
  EXPECT_NEAR(g[1], expected, expected * 1e-5) << "Eq. 16 telescoping violated";
}

// Eq. 17: the value sent after a sparse interval of length T equals a
// vanilla-momentum step with batch size (and LR) enlarged T times.
TEST(SAMomentum, EquivalenceToEnlargedBatchEq17) {
  const float m = 0.6f, lr = 0.05f;
  const int T = 4;
  dgs::util::Rng rng(3);
  std::vector<float> grads(T);
  for (auto& g : grads) g = rng.normal(0, 1);
  grads[T - 1] = 500.0f;  // dominant final gradient so entry 1 wins the top-k

  // SAMomentum path: entry 1 of 2 accumulates over T steps, sent on the last.
  SAMomentum alg({2}, ratio(50.0), m);
  (void)alg.step(views_of({{0.0f, 0.5f}}), lr, 0);  // establish u_c (sent)
  const float u_c = alg.velocity()[0][1];
  dgs::sparse::SparseUpdate last;
  for (int t = 0; t < T; ++t) {
    const bool is_last = (t == T - 1);
    const float big = is_last ? 0.0f : 100.0f;
    last = alg.step(views_of({{big, grads[static_cast<std::size_t>(t)]}}), lr, 0);
  }
  ASSERT_EQ(last.layers[0].nnz(), 1u);
  ASSERT_EQ(last.layers[0].idx[0], 1u);
  const float sam_sent = densified(last, 0)[1];

  // Vanilla MSGD with batch and LR enlarged T x: one step with the averaged
  // gradient and T*lr (Eq. 17).
  const float avg =
      std::accumulate(grads.begin(), grads.end(), 0.0f) / static_cast<float>(T);
  const float msgd = m * u_c + static_cast<float>(T) * lr * avg;
  EXPECT_NEAR(sam_sent, msgd, 1e-5) << "Eq. 17 equivalence violated";
}

// With T=1 (everything sent every step), SAMomentum degenerates to dense
// momentum exactly (the paper's remark after Eq. 16).
TEST(SAMomentum, FullRatioMatchesDenseMomentum) {
  const float m = 0.7f, lr = 0.1f;
  SAMomentum sam({8}, ratio(100.0), m);
  DenseMomentum dense({8}, m);
  dgs::util::Rng rng(4);
  for (int step = 0; step < 20; ++step) {
    std::vector<float> g(8);
    for (auto& v : g) v = rng.normal(0, 1);
    const auto us = sam.step(views_of({g}), lr, 0);
    const auto ud = dense.step(views_of({g}), lr, 0);
    const auto ds = densified(us, 0);
    const auto dd = densified(ud, 0);
    for (std::size_t i = 0; i < 8; ++i)
      ASSERT_NEAR(ds[i], dd[i], 1e-5) << "step " << step << " coord " << i;
  }
}

// The motivation result (Eq. 12-13): in naive sparse momentum the m^{T-1}
// discount factors disappear. We demonstrate the contrast: naive
// accumulation of lr*grad (GradientDropping) sends sum(lr*g) with no m
// weighting, while SAMomentum sends m*u_c + lr*sum(g) — i.e. it retains one
// momentum factor instead of dropping all of them.
TEST(MomentumDisappearance, NaiveAccumulationHasNoDiscountFactors) {
  const float lr = 0.1f;
  const int T = 4;
  GradientDropping gd({2}, ratio(50.0));
  for (int t = 0; t < T - 1; ++t)
    (void)gd.step(views_of({{100.0f, 0.3f}}), lr, 0);
  const auto u = gd.step(views_of({{0.0f, 0.3f}}), lr, 0);
  // Sent value is exactly lr * T * 0.3 (Eq. 13 — a plain enlarged batch, no
  // momentum memory at all).
  EXPECT_NEAR(densified(u, 0)[1], lr * T * 0.3f, 1e-5);
}

// ------------------------------------------------------------------- factory

TEST(Factory, BuildsEveryMethod) {
  TrainConfig config;
  config.momentum = 0.7;
  for (Method method : {Method::kMSGD, Method::kASGD, Method::kGDAsync,
                        Method::kDGCAsync, Method::kDGS}) {
    config.method = method;
    auto alg = make_worker_algorithm(method, {10, 5}, config);
    ASSERT_NE(alg, nullptr);
    EXPECT_EQ(alg->method(), method);
  }
}

TEST(MethodTraits, Table5Matrix) {
  EXPECT_STREQ(method_traits(Method::kDGS).momentum, "SAMomentum");
  EXPECT_FALSE(method_traits(Method::kDGS).residual_accumulation);
  EXPECT_TRUE(method_traits(Method::kDGCAsync).momentum_correction);
  EXPECT_TRUE(method_traits(Method::kGDAsync).residual_accumulation);
  EXPECT_STREQ(method_traits(Method::kASGD).momentum, "N");
}

TEST(MethodParse, RoundTrips) {
  EXPECT_EQ(parse_method("dgs"), Method::kDGS);
  EXPECT_EQ(parse_method("DGC-async"), Method::kDGCAsync);
  EXPECT_EQ(parse_method("msgd"), Method::kMSGD);
  EXPECT_THROW((void)parse_method("nope"), std::invalid_argument);
  EXPECT_TRUE(method_sparsifies(Method::kDGS));
  EXPECT_FALSE(method_sparsifies(Method::kASGD));
}

TEST(TrainConfig, LrSchedule) {
  TrainConfig config;
  config.lr = 0.1;
  config.epochs = 50;
  config.lr_decay_at = {0.6, 0.8};
  config.lr_decay_factor = 0.1;
  EXPECT_DOUBLE_EQ(config.lr_at_epoch(0), 0.1);
  EXPECT_DOUBLE_EQ(config.lr_at_epoch(29), 0.1);
  EXPECT_NEAR(config.lr_at_epoch(30), 0.01, 1e-12);
  EXPECT_NEAR(config.lr_at_epoch(40), 0.001, 1e-12);
  EXPECT_NEAR(config.lr_at_epoch(49), 0.001, 1e-12);
}

}  // namespace
