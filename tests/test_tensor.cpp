// Unit tests for the tensor substrate: shapes, views, im2col/col2im.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using dgs::tensor::conv_out_size;
using dgs::tensor::Shape;
using dgs::tensor::Tensor;

TEST(Shape, NumelAndRank) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(Shape{}.numel(), 0u);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_FALSE((Shape{2, 3}) == (Shape{3, 2}));
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{4, 4});
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FromVectorAndIndexing) {
  Tensor t = Tensor::from(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at2(0, 2), 3);
  EXPECT_FLOAT_EQ(t.at2(1, 0), 4);
  EXPECT_THROW(Tensor::from(Shape{2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, At4RowMajorLayout) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 42.0f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 42.0f);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t = Tensor::from(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_FLOAT_EQ(r.at2(2, 1), 6);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, InitializersProduceExpectedStatistics) {
  dgs::util::Rng rng(5);
  Tensor t(Shape{10000});
  t.init_normal(rng, 1.0f, 2.0f);
  double sum = 0, sq = 0;
  for (float v : t.flat()) {
    sum += v;
    sq += double(v - 1.0) * (v - 1.0);
  }
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / 10000.0), 2.0, 0.1);

  t.init_uniform(rng, -1.0f, 1.0f);
  float lo = 1e9f, hi = -1e9f;
  for (float v : t.flat()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, -1.0f);
  EXPECT_LT(hi, 1.0f);
}

TEST(Tensor, HeInitVariance) {
  dgs::util::Rng rng(6);
  Tensor t(Shape{20000});
  t.init_he(rng, 50);
  double sq = 0;
  for (float v : t.flat()) sq += double(v) * v;
  EXPECT_NEAR(sq / 20000.0, 2.0 / 50.0, 0.01);
}

TEST(ConvOutSize, StandardCases) {
  EXPECT_EQ(conv_out_size(32, 3, 1, 1), 32u);  // same padding
  EXPECT_EQ(conv_out_size(32, 3, 2, 1), 16u);
  EXPECT_EQ(conv_out_size(5, 3, 1, 0), 3u);
}

// Reference im2col check on a tiny example done by hand.
TEST(Im2col, TinyExampleMatchesHandComputation) {
  // 1 channel, 3x3 image, 2x2 kernel, stride 1, pad 0 -> 4 rows x 4 cols.
  const std::vector<float> img{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(4 * 4);
  dgs::tensor::im2col(img.data(), 1, 3, 3, 2, 2, 1, 0, cols.data());
  // Row 0 is kernel offset (0,0): values of top-left of each window.
  const std::vector<float> expect_row0{1, 2, 4, 5};
  const std::vector<float> expect_row3{5, 6, 8, 9};  // offset (1,1)
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(cols[static_cast<std::size_t>(i)], expect_row0[static_cast<std::size_t>(i)]);
    EXPECT_FLOAT_EQ(cols[12 + static_cast<std::size_t>(i)], expect_row3[static_cast<std::size_t>(i)]);
  }
}

TEST(Im2col, PaddingWritesZeros) {
  const std::vector<float> img{1, 2, 3, 4};  // 1x2x2
  const std::size_t oh = conv_out_size(2, 3, 1, 1);
  std::vector<float> cols(9 * oh * oh, -1.0f);
  dgs::tensor::im2col(img.data(), 1, 2, 2, 3, 3, 1, 1, cols.data());
  // Kernel offset (0,0) at output (0,0) reads image(-1,-1) -> 0.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
}

// col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST(Col2im, IsAdjointOfIm2col) {
  dgs::util::Rng rng(7);
  const std::size_t c = 2, h = 5, w = 6, k = 3, stride = 2, pad = 1;
  const std::size_t oh = conv_out_size(h, k, stride, pad);
  const std::size_t ow = conv_out_size(w, k, stride, pad);
  const std::size_t rows = c * k * k, cols_n = oh * ow;

  std::vector<float> x(c * h * w), y(rows * cols_n);
  for (auto& v : x) v = rng.normal(0, 1);
  for (auto& v : y) v = rng.normal(0, 1);

  std::vector<float> ax(rows * cols_n);
  dgs::tensor::im2col(x.data(), c, h, w, k, k, stride, pad, ax.data());
  std::vector<float> aty(c * h * w, 0.0f);
  dgs::tensor::col2im(y.data(), c, h, w, k, k, stride, pad, aty.data());

  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < ax.size(); ++i) lhs += double(ax[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += double(x[i]) * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Tensor, StrTruncates) {
  Tensor t(Shape{100}, 1.0f);
  const std::string s = t.str(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
