// End-to-end integration tests across worker + server + engines:
// the Eq. 5 identity on real models, method equivalences (DGS@R=100 ==
// MSGD, GD@R=100 == ASGD), engine determinism, thread/sim agreement, and
// multi-worker convergence smoke tests for every method.
#include <gtest/gtest.h>

#include <memory>

#include "core/server.h"
#include "core/session.h"
#include "core/worker.h"
#include "data/synthetic.h"

namespace {

using namespace dgs;
using core::EngineKind;
using core::Method;
using core::RunResult;
using core::TrainConfig;

data::SyntheticDataset small_data(std::uint64_t seed = 11) {
  data::SyntheticSpec spec = data::SyntheticSpec::synth_cifar(seed);
  spec.num_train = 512;
  spec.num_test = 256;
  return data::make_synthetic(spec);
}

nn::ModelSpec small_model(const data::SyntheticDataset& data) {
  return nn::ModelSpec::mlp(data.train->feature_dim(), {32},
                            data.train->num_classes());
}

TrainConfig base_config(Method method, std::size_t workers) {
  TrainConfig config;
  config.method = method;
  config.num_workers = method == Method::kMSGD ? 1 : workers;
  config.batch_size = 16;
  config.epochs = 3;
  config.lr = 0.02;
  config.momentum = 0.7;
  config.seed = 99;
  return config;
}

// ---------------------------------------------------------- Eq.5 on real NN

TEST(Integration, WorkerModelTracksServerModelExactly) {
  const auto data = small_data();
  const auto spec = small_model(data);
  TrainConfig config = base_config(Method::kDGS, 2);
  const auto theta0 = core::initial_parameters(spec, config.seed);

  core::Worker w0(0, spec, data.train, config, theta0);
  core::Worker w1(1, spec, data.train, config, theta0);
  nn::ModulePtr probe = spec.build();
  core::ParameterServer server(nn::param_layer_sizes(probe->parameters()),
                               theta0, {.num_workers = 2});

  // Interleave the two workers arbitrarily; after each worker receives its
  // reply its local model must equal the global model (Eq. 5).
  core::Worker* workers[] = {&w0, &w1};
  const int order[] = {0, 1, 1, 0, 0, 1, 0, 1, 1, 0};
  for (int k : order) {
    auto iter = workers[k]->compute_and_pack();
    const auto reply = server.handle_push(iter.push);
    workers[k]->apply_model_diff(reply);
    const auto global = server.global_model_flat();
    const auto local = workers[k]->model_flat();
    ASSERT_EQ(global.size(), local.size());
    // Eq. 5 is exact in real arithmetic; in float32 the worker accumulates
    // theta0 + G1 + G2 + ... while the server computes theta0 + M in one
    // shot, so the two differ by summation-order rounding only.
    for (std::size_t i = 0; i < global.size(); ++i)
      ASSERT_NEAR(global[i], local[i], 1e-4) << "coordinate " << i;
  }
}

// ------------------------------------------------- degenerate equivalences

// DGS with R=100 on one worker is exactly MSGD (Eq. 5 + Eq. 16 with T=1).
TEST(Integration, DgsAtFullRatioEqualsMsgd) {
  const auto data = small_data();
  const auto spec = small_model(data);

  TrainConfig dgs = base_config(Method::kDGS, 1);
  dgs.compression.ratio_percent = 100.0;
  TrainConfig msgd = base_config(Method::kMSGD, 1);

  const RunResult a = core::SimEngine(spec, data.train, data.test, dgs).run();
  const RunResult b = core::SimEngine(spec, data.train, data.test, msgd).run();

  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].train_loss, b.curve[i].train_loss);
    EXPECT_DOUBLE_EQ(a.curve[i].test_accuracy, b.curve[i].test_accuracy);
  }
}

// Gradient Dropping with R=100 on one worker degenerates to plain SGD, i.e.
// to ASGD with a single worker.
TEST(Integration, GdAtFullRatioEqualsAsgdSingleWorker) {
  const auto data = small_data();
  const auto spec = small_model(data);

  TrainConfig gd = base_config(Method::kGDAsync, 1);
  gd.compression.ratio_percent = 100.0;
  TrainConfig asgd = base_config(Method::kASGD, 1);

  const RunResult a = core::SimEngine(spec, data.train, data.test, gd).run();
  const RunResult b = core::SimEngine(spec, data.train, data.test, asgd).run();
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].train_loss, b.curve[i].train_loss);
    EXPECT_DOUBLE_EQ(a.curve[i].test_accuracy, b.curve[i].test_accuracy);
  }
}

// ----------------------------------------------------------- determinism

TEST(Integration, SimEngineIsDeterministic) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const TrainConfig config = base_config(Method::kDGS, 4);

  const RunResult a = core::SimEngine(spec, data.train, data.test, config).run();
  const RunResult b = core::SimEngine(spec, data.train, data.test, config).run();

  EXPECT_DOUBLE_EQ(a.final_test_accuracy, b.final_test_accuracy);
  EXPECT_DOUBLE_EQ(a.final_train_loss, b.final_train_loss);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.bytes.upward_bytes, b.bytes.upward_bytes);
  EXPECT_EQ(a.bytes.downward_bytes, b.bytes.downward_bytes);
  EXPECT_EQ(a.server_steps, b.server_steps);
}

TEST(Integration, DifferentSeedsGiveDifferentTrajectories) {
  const auto data = small_data();
  const auto spec = small_model(data);
  TrainConfig c1 = base_config(Method::kDGS, 2);
  TrainConfig c2 = c1;
  c2.seed = c1.seed + 1;
  const RunResult a = core::SimEngine(spec, data.train, data.test, c1).run();
  const RunResult b = core::SimEngine(spec, data.train, data.test, c2).run();
  EXPECT_NE(a.final_train_loss, b.final_train_loss);
}

// ------------------------------------------------------- engine agreement

// With a single worker both engines process the same sequence of pushes in
// the same order, so the final model (and hence accuracy) must agree.
TEST(Integration, ThreadAndSimEnginesAgreeSingleWorker) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const TrainConfig config = base_config(Method::kDGS, 1);

  const RunResult sim = core::SimEngine(spec, data.train, data.test, config).run();
  const RunResult thread =
      core::ThreadEngine(spec, data.train, data.test, config).run();
  EXPECT_DOUBLE_EQ(sim.final_test_accuracy, thread.final_test_accuracy);
  EXPECT_EQ(sim.server_steps, thread.server_steps);
  EXPECT_EQ(sim.bytes.upward_bytes, thread.bytes.upward_bytes);
}

TEST(Integration, ThreadEngineMultiWorkerCompletesAndLearns) {
  const auto data = small_data();
  const auto spec = small_model(data);
  TrainConfig config = base_config(Method::kDGS, 4);
  config.epochs = 4;
  const RunResult r =
      core::ThreadEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(r.final_test_accuracy, 0.5);
  EXPECT_EQ(r.server_steps, r.bytes.upward_messages);
  EXPECT_GT(r.samples_processed, 0u);
}

// --------------------------------------------------- per-method smoke sweep

class MethodSmoke : public ::testing::TestWithParam<Method> {};

TEST_P(MethodSmoke, FourWorkersLearnTheTask) {
  const auto data = small_data();
  const auto spec = small_model(data);
  TrainConfig config = base_config(GetParam(), 4);
  config.epochs = 7;
  if (GetParam() == Method::kDGCAsync) config.compression.warmup_epochs = 2;
  const RunResult r = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(r.final_test_accuracy, 0.55)
      << core::method_name(GetParam()) << " failed to learn";
  EXPECT_GT(r.server_steps, 0u);
  EXPECT_GT(r.bytes.total_bytes(), 0u);
  if (config.num_workers > 1) {
    EXPECT_GT(r.staleness.max, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodSmoke,
                         ::testing::Values(Method::kMSGD, Method::kASGD,
                                           Method::kGDAsync, Method::kDGCAsync,
                                           Method::kDGS),
                         [](const auto& info) {
                           std::string n = core::method_name(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// ----------------------------------------------------- communication shape

TEST(Integration, SparsificationShrinksUpwardTraffic) {
  const auto data = small_data();
  const auto spec = small_model(data);

  TrainConfig dense = base_config(Method::kASGD, 2);
  TrainConfig sparse = base_config(Method::kDGS, 2);
  sparse.compression.ratio_percent = 1.0;

  const RunResult a = core::SimEngine(spec, data.train, data.test, dense).run();
  const RunResult b = core::SimEngine(spec, data.train, data.test, sparse).run();
  ASSERT_EQ(a.bytes.upward_messages, b.bytes.upward_messages);
  // Top-1% in COO is ~2% of dense payload; headers add a little.
  EXPECT_LT(b.bytes.upward_bytes, a.bytes.upward_bytes / 10);
}

TEST(Integration, SecondaryCompressionShrinksDownwardTraffic) {
  const auto data = small_data();
  const auto spec = small_model(data);

  TrainConfig plain = base_config(Method::kDGS, 4);
  TrainConfig secondary = plain;
  secondary.compression.secondary = true;
  secondary.compression.secondary_ratio_percent = 1.0;

  const RunResult a = core::SimEngine(spec, data.train, data.test, plain).run();
  const RunResult b =
      core::SimEngine(spec, data.train, data.test, secondary).run();
  EXPECT_LT(b.bytes.downward_bytes, a.bytes.downward_bytes);
}

TEST(Integration, AsgdDownloadsEffectivelyWholeModel) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const TrainConfig config = base_config(Method::kASGD, 2);
  const RunResult r = core::SimEngine(spec, data.train, data.test, config).run();
  nn::ModulePtr probe = spec.build();
  const std::size_t model_bytes =
      nn::param_numel(probe->parameters()) * sizeof(float);
  const double avg_down = static_cast<double>(r.bytes.downward_bytes) /
                          static_cast<double>(r.bytes.downward_messages);
  EXPECT_GT(avg_down, 0.9 * static_cast<double>(model_bytes));
}

// -------------------------------------------------------------- accounting

TEST(Integration, MemoryAccountingMatchesPaperFormulas) {
  const auto data = small_data();
  const auto spec = small_model(data);
  nn::ModulePtr probe = spec.build();
  const std::size_t model_bytes =
      nn::param_numel(probe->parameters()) * sizeof(float);

  TrainConfig config = base_config(Method::kDGS, 4);
  const RunResult r = core::SimEngine(spec, data.train, data.test, config).run();
  // Server: theta0 + M + N * v_k.
  EXPECT_EQ(r.server_state_bytes, model_bytes * (2 + 4));
  // DGS worker: a single velocity buffer.
  EXPECT_EQ(r.worker_state_bytes, model_bytes);

  TrainConfig dgc = base_config(Method::kDGCAsync, 4);
  const RunResult r2 = core::SimEngine(spec, data.train, data.test, dgc).run();
  // DGC worker: velocity + residual (twice the state of DGS).
  EXPECT_EQ(r2.worker_state_bytes, 2 * model_bytes);
}

TEST(Integration, SimTimeScalesWithComputeModel) {
  const auto data = small_data();
  const auto spec = small_model(data);
  TrainConfig fast = base_config(Method::kDGS, 2);
  fast.compute.base_seconds = 1e-3;
  fast.compute.jitter_frac = 0.0;
  TrainConfig slow = fast;
  slow.compute.base_seconds = 2e-3;
  const RunResult a = core::SimEngine(spec, data.train, data.test, fast).run();
  const RunResult b = core::SimEngine(spec, data.train, data.test, slow).run();
  EXPECT_NEAR(b.sim_seconds / a.sim_seconds, 2.0, 0.1);
}

TEST(Integration, SessionFacadeSelectsEngines) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const TrainConfig config = base_config(Method::kDGS, 1);
  core::TrainingSession sim(spec, data.train, data.test, config,
                            EngineKind::kSimulated);
  core::TrainingSession thread(spec, data.train, data.test, config,
                               EngineKind::kThreaded);
  EXPECT_DOUBLE_EQ(sim.run().final_test_accuracy,
                   thread.run().final_test_accuracy);
}

TEST(Integration, MsgdRejectsMultipleWorkers) {
  const auto data = small_data();
  const auto spec = small_model(data);
  TrainConfig config = base_config(Method::kMSGD, 1);
  config.num_workers = 2;
  EXPECT_THROW(core::SimEngine(spec, data.train, data.test, config),
               std::invalid_argument);
}

}  // namespace
