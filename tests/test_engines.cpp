// Engine-behavior tests: global sample budget semantics, evaluation
// cadence, curve recording, heterogeneous work distribution, evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.h"
#include "core/session.h"
#include "data/synthetic.h"

namespace {

using namespace dgs;
using core::Method;

data::SyntheticDataset small_data(std::uint64_t seed = 51) {
  data::SyntheticSpec spec = data::SyntheticSpec::synth_cifar(seed);
  spec.num_train = 512;
  spec.num_test = 256;
  return data::make_synthetic(spec);
}

nn::ModelSpec small_model(const data::SyntheticDataset& data) {
  return nn::ModelSpec::mlp(data.train->feature_dim(), {24},
                            data.train->num_classes());
}

core::TrainConfig base_config(Method method, std::size_t workers) {
  core::TrainConfig config;
  config.method = method;
  config.num_workers = workers;
  config.batch_size = 16;
  config.epochs = 4;
  config.lr = 0.02;
  config.seed = 53;
  return config;
}

TEST(Engines, SampleBudgetIsRespected) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const auto config = base_config(Method::kDGS, 4);
  const auto r = core::SimEngine(spec, data.train, data.test, config).run();
  const std::uint64_t budget = 4ull * data.train->size();
  // Scheduled batches may overshoot by at most (workers-1) in-flight
  // batches.
  EXPECT_GE(r.samples_processed, budget);
  EXPECT_LE(r.samples_processed, budget + 4 * config.batch_size);
}

TEST(Engines, FastWorkersContributeMoreIterations) {
  const auto data = small_data();
  const auto spec = small_model(data);
  auto config = base_config(Method::kASGD, 2);
  config.compute.jitter_frac = 0.0;
  config.compute.worker_speed = {1.0, 3.0};  // worker 1 is 3x slower
  config.record_curve = false;
  const auto r = core::SimEngine(spec, data.train, data.test, config).run();
  // With a shared budget the makespan is far below the all-work-on-slow
  // bound: the fast worker absorbs most batches. Uniform-speed time:
  const auto uniform = [&] {
    auto c = config;
    c.compute.worker_speed = {1.0, 1.0};
    return core::SimEngine(spec, data.train, data.test, c).run();
  }();
  // Fast worker processes ~3/4 of the budget => makespan ~1.5x of uniform,
  // far below the 3x a fixed per-worker shard would cost.
  EXPECT_LT(r.sim_seconds / uniform.sim_seconds, 2.0);
}

TEST(Engines, EvalCadenceControlsCurveDensity) {
  const auto data = small_data();
  const auto spec = small_model(data);
  auto config = base_config(Method::kDGS, 2);
  config.eval_every_epochs = 1;
  const auto dense = core::SimEngine(spec, data.train, data.test, config).run();
  config.eval_every_epochs = 2;
  const auto sparse = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(dense.curve.size(), sparse.curve.size());
  // Every point's epoch is a multiple of the cadence.
  for (const auto& p : sparse.curve) EXPECT_EQ(p.epoch % 2, 0u);
}

TEST(Engines, RecordCurveOffYieldsSingleTerminalPoint) {
  const auto data = small_data();
  const auto spec = small_model(data);
  auto config = base_config(Method::kDGS, 2);
  config.record_curve = false;
  const auto r = core::SimEngine(spec, data.train, data.test, config).run();
  ASSERT_EQ(r.curve.size(), 1u);
  EXPECT_DOUBLE_EQ(r.curve.back().test_accuracy, r.final_test_accuracy);
}

TEST(Engines, FinalModelMatchesReportedAccuracy) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const auto config = base_config(Method::kGDAsync, 3);
  const auto r = core::SimEngine(spec, data.train, data.test, config).run();
  core::Evaluator evaluator(spec, data.test);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(r.final_model).accuracy,
                   r.final_test_accuracy);
}

TEST(Engines, LrScheduleFollowsGlobalEpochs) {
  // With decay at 50% of epochs and a 2x factor difference in final loss
  // behaviour, we can only assert indirectly: training with an immediate
  // huge decay must move the model less than without.
  const auto data = small_data();
  const auto spec = small_model(data);
  auto config = base_config(Method::kASGD, 2);
  config.record_curve = false;
  config.lr_decay_at = {0.0};  // decay from epoch 0
  config.lr_decay_factor = 1e-6;
  const auto frozen = core::SimEngine(spec, data.train, data.test, config).run();
  // Effectively zero learning rate: accuracy stays at chance.
  EXPECT_LT(frozen.final_test_accuracy, 0.3);

  config.lr_decay_at = {};
  const auto normal = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(normal.final_test_accuracy, 0.5);
}

TEST(Evaluator, DeterministicAndShapeChecked) {
  const auto data = small_data();
  const auto spec = small_model(data);
  const auto theta = core::initial_parameters(spec, 5);
  core::Evaluator evaluator(spec, data.test, 64);
  const auto a = evaluator.evaluate(theta);
  const auto b = evaluator.evaluate(theta);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  // Untrained model: near-chance accuracy, loss at least the uniform bound
  // (He-init logits can be large, inflating the loss above log C).
  EXPECT_LT(a.accuracy, 0.35);
  EXPECT_GT(a.loss, 1.0);

  std::vector<float> wrong(theta.size() + 1);
  EXPECT_THROW((void)evaluator.evaluate(wrong), std::invalid_argument);
}

TEST(Engines, StalenessGrowsWithWorkers) {
  const auto data = small_data();
  const auto spec = small_model(data);
  auto config = base_config(Method::kASGD, 2);
  config.record_curve = false;
  const auto two = core::SimEngine(spec, data.train, data.test, config).run();
  config.num_workers = 8;
  const auto eight = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(eight.staleness.mean(), two.staleness.mean());
  EXPECT_GE(eight.staleness.max, two.staleness.max);
}

TEST(Engines, NetworkBandwidthStretchesSimTime) {
  const auto data = small_data();
  // A wider model so dense ASGD messages are large enough for the 1 Gbps
  // egress to become the binding resource.
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {64},
                                       data.train->num_classes());
  auto config = base_config(Method::kASGD, 4);
  config.record_curve = false;
  config.compute.base_seconds = 1e-4;  // make comm dominant
  config.network = comm::NetworkModel::ten_gbps();
  const auto fast = core::SimEngine(spec, data.train, data.test, config).run();
  config.network = comm::NetworkModel::one_gbps();
  const auto slow = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(slow.sim_seconds, 2.0 * fast.sim_seconds);
}

}  // namespace
