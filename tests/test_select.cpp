// Property tests for the fused sparsification kernel layer
// (sparse/select.h): the fused select+compact kernels must be
// byte-identical to the pre-kernel-layer scalar reference path across
// random shapes, ratios, ties, denormals and NaN; plus the documented
// NaN / signed-zero policy, the sampled-estimator clamp, and an
// allocation-counter proof that the steady-state worker sparsify path
// performs zero heap allocations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <span>
#include <vector>

#include "core/optimizer.h"
#include "sparse/coo.h"
#include "sparse/select.h"
#include "sparse/topk.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it.
// Used by the AllocationFree tests to prove the warm sparsify path never
// touches the heap. Counting is process-wide, so those tests must not call
// anything allocating (including gtest assertions) inside the measured loop.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dgs;
using namespace dgs::sparse;

// ------------------------------------------------------------- test inputs

constexpr float kDenormal = 1e-41f;  // well below FLT_MIN
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

/// Random gradient-like values with the edge cases the policy pins down:
/// exact +/-0, denormals, heavy ties (values snapped to a coarse grid so
/// many share a magnitude key), and optionally NaN.
std::vector<float> edge_case_values(std::size_t n, std::uint64_t seed,
                                    bool with_nan) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    switch (static_cast<int>(rng.below(8))) {
      case 0:
        x = 0.0f;
        break;
      case 1:
        x = -0.0f;
        break;
      case 2:
        x = kDenormal * static_cast<float>(1 + rng.below(4));
        break;
      case 3:
        // Snap to a 16-level grid: guarantees ties at the threshold.
        x = static_cast<float>(static_cast<int>(rng.below(16))) / 8.0f - 1.0f;
        break;
      default:
        x = static_cast<float>(rng.normal(0, 1));
        break;
    }
  }
  if (with_nan && n >= 4) {
    v[n / 4] = kNaN;
    v[n / 2] = -kNaN;
  }
  return v;
}

/// Bitwise float equality: distinguishes +0 from -0 and treats any NaN
/// payload as itself, which value comparison cannot.
bool same_bits(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

void expect_chunks_identical(const LayerChunk& got, const LayerChunk& want,
                             const char* what) {
  ASSERT_EQ(got.layer, want.layer) << what;
  ASSERT_EQ(got.dense_size, want.dense_size) << what;
  ASSERT_EQ(got.idx, want.idx) << what;
  ASSERT_EQ(got.val.size(), want.val.size()) << what;
  for (std::size_t i = 0; i < got.val.size(); ++i)
    ASSERT_TRUE(same_bits(got.val[i], want.val[i]))
        << what << ": val[" << i << "] " << got.val[i] << " vs " << want.val[i];
}

void expect_arrays_identical(std::span<const float> got,
                             std::span<const float> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_TRUE(same_bits(got[i], want[i]))
        << what << ": [" << i << "] " << got[i] << " vs " << want[i];
}

// ------------------------------------------------- fused vs reference oracle

/// One cross-check of every fused kernel against the pre-kernel-layer
/// reference: nth_element-on-fresh-scratch threshold + the scalar COO
/// kernels, which share the magnitude-key policy.
void check_against_reference(const std::vector<float>& v, double ratio,
                             SparsifyWorkspace& ws) {
  const float thr = reference::topk_threshold(v, ratio);
  ASSERT_FALSE(std::isnan(thr));

  // select(): threshold and kept count agree with the oracle. A ratio that
  // keeps everything legitimately reports threshold 0 (skip-selection fast
  // path) while the oracle reports the minimum magnitude; both extract the
  // same set, which is what the chunk comparisons below verify.
  const SelectResult sel = ws.select(v, ratio);
  const std::size_t n_kept = [&] {
    std::size_t c = 0;
    for (float x : v) c += magnitude_key(x) >= magnitude_key(thr) &&
                           magnitude_key(x) != 0;
    return c;
  }();
  ASSERT_EQ(sel.kept, n_kept);
  const std::size_t nonzero =
      v.size() - static_cast<std::size_t>(
                     std::count_if(v.begin(), v.end(), [](float x) {
                       return magnitude_key(x) == 0;
                     }));
  if (sel.kept < nonzero) {
    ASSERT_EQ(magnitude_key(sel.threshold), magnitude_key(thr));
  }

  const LayerChunk want_copy = extract_copy(7, v, thr);

  LayerChunk got;
  ws.sparsify_copy(7, v, ratio, got);
  expect_chunks_identical(got, want_copy, "sparsify_copy");

  ws.compact_copy(7, v, sel, got);
  expect_chunks_identical(got, want_copy, "compact_copy");

  {
    std::vector<float> want_v = v;
    const LayerChunk want =
        extract_and_zero(7, {want_v.data(), want_v.size()}, thr);
    std::vector<float> got_v = v;
    ws.sparsify_zero(7, {got_v.data(), got_v.size()}, ratio, got);
    expect_chunks_identical(got, want, "sparsify_zero");
    expect_arrays_identical(got_v, want_v, "sparsify_zero residual");
  }
  {
    const float factor = 0.5f;
    std::vector<float> want_v = v;
    const LayerChunk want = extract_copy(7, want_v, thr);
    scale_below({want_v.data(), want_v.size()}, thr, factor);
    std::vector<float> got_v = v;
    ws.sparsify_rescale(7, {got_v.data(), got_v.size()}, ratio, factor, got);
    expect_chunks_identical(got, want, "sparsify_rescale");
    expect_arrays_identical(got_v, want_v, "sparsify_rescale residual");
  }
}

TEST(SelectProperty, FusedMatchesReferenceAcrossShapesAndRatios) {
  SparsifyWorkspace ws;
  const double ratios[] = {0.01, 0.1, 1.0, 5.0, 37.5, 99.9, 100.0, 250.0};
  util::Rng shape_rng(11);
  for (int trial = 0; trial < 24; ++trial) {
    // Mostly small shapes (nth_element path) plus sizes that straddle the
    // radix cutoff so both selection strategies and the fused gather path
    // are exercised; `with_nan` on a third of the trials.
    const std::size_t n =
        trial < 16 ? shape_rng.below(2048)
                   : SparsifyWorkspace::kRadixCutoff - 1000 +
                         shape_rng.below(SparsifyWorkspace::kRadixCutoff);
    const auto v = edge_case_values(n, 1000 + static_cast<std::uint64_t>(trial),
                                    trial % 3 == 0);
    for (const double ratio : ratios)
      check_against_reference(v, ratio, ws);
  }
}

TEST(SelectProperty, FusedMatchesReferenceLargeRadix) {
  SparsifyWorkspace ws;
  for (int trial = 0; trial < 3; ++trial) {
    const auto v = edge_case_values(
        3 * SparsifyWorkspace::kRadixCutoff + 12345,
        2000 + static_cast<std::uint64_t>(trial), trial == 0);
    for (const double ratio : {0.1, 1.0, 50.0, 100.0})
      check_against_reference(v, ratio, ws);
  }
}

TEST(SelectProperty, EmptyInput) {
  SparsifyWorkspace ws;
  const SelectResult sel = ws.select({}, 1.0);
  EXPECT_EQ(sel.kept, 0u);
  LayerChunk chunk;
  ws.sparsify_copy(3, {}, 1.0, chunk);
  EXPECT_EQ(chunk.layer, 3u);
  EXPECT_EQ(chunk.dense_size, 0u);
  EXPECT_TRUE(chunk.idx.empty());
}

// ------------------------------------------------------------ NaN / +-0 policy

TEST(SelectPolicy, MagnitudeKeyOrdersDenormalsAndClampsNaN) {
  EXPECT_EQ(magnitude_key(0.0f), 0u);
  EXPECT_EQ(magnitude_key(-0.0f), 0u);
  EXPECT_LT(magnitude_key(kDenormal), magnitude_key(FLT_MIN));
  EXPECT_LT(magnitude_key(FLT_MIN), magnitude_key(1.0f));
  EXPECT_LT(magnitude_key(1.0f),
            magnitude_key(std::numeric_limits<float>::infinity()));
  // NaN (any sign/payload) clamps to the +inf key: top of the order.
  EXPECT_EQ(magnitude_key(kNaN),
            magnitude_key(std::numeric_limits<float>::infinity()));
  EXPECT_EQ(magnitude_key(-kNaN), magnitude_key(kNaN));
}

TEST(SelectPolicy, NaNAlwaysExtractedAndThresholdNeverNaN) {
  SparsifyWorkspace ws;
  std::vector<float> v(100, 0.25f);
  v[17] = kNaN;
  v[83] = -kNaN;
  const SelectResult sel = ws.select(v, 2.0);  // k = 2: exactly the NaNs
  EXPECT_FALSE(std::isnan(sel.threshold));
  EXPECT_EQ(sel.kept, 2u);
  LayerChunk chunk;
  ws.compact_copy(0, v, sel, chunk);
  ASSERT_EQ(chunk.idx, (std::vector<std::uint32_t>{17, 83}));
  EXPECT_TRUE(std::isnan(chunk.val[0]));
  EXPECT_TRUE(std::isnan(chunk.val[1]));

  // The free-function threshold obeys the same rule.
  EXPECT_FALSE(std::isnan(topk_threshold(v, 2.0)));
}

TEST(SelectPolicy, NaNNeverRescaled) {
  SparsifyWorkspace ws;
  std::vector<float> v(64, 1.0f);
  v[5] = kNaN;
  v[6] = 8.0f;
  LayerChunk chunk;
  // k = 2 keeps the NaN and the 8.0; everything else is scaled.
  ws.sparsify_rescale(0, {v.data(), v.size()}, 100.0 * 2 / 64, 0.5f, chunk);
  ASSERT_EQ(chunk.idx, (std::vector<std::uint32_t>{5, 6}));
  EXPECT_TRUE(std::isnan(v[5]));  // still resident, untouched
  EXPECT_FLOAT_EQ(v[6], 8.0f);
  EXPECT_FLOAT_EQ(v[0], 0.5f);
}

TEST(SelectPolicy, SignedZerosNeverExtractedAndScalingIsNoOp) {
  SparsifyWorkspace ws;
  std::vector<float> v{0.0f, -0.0f, 1.0f, -0.0f, 2.0f, 0.0f};
  LayerChunk chunk;
  ws.sparsify_copy(0, v, 100.0, chunk);  // keep-everything ratio
  EXPECT_EQ(chunk.idx, (std::vector<std::uint32_t>{2, 4}));

  // Zeros survive a (positive-factor) rescale pass bit-for-bit, sign
  // included: 0 * f == 0 with the sign preserved.
  std::vector<float> w = v;
  ws.sparsify_rescale(0, {w.data(), w.size()}, 100.0, 0.5f, chunk);
  EXPECT_TRUE(same_bits(w[1], -0.0f));
  EXPECT_TRUE(same_bits(w[0], 0.0f));
}

// ------------------------------------------------------------------ sampled

TEST(SelectSampled, ClampsToExactForSmallPopulations) {
  SparsifyWorkspace ws;
  const auto v = edge_case_values(1000, 42, false);
  // n < 4 * sample_size: must be exact, independent of the rng stream.
  util::Rng rng_a(1), rng_b(999);
  const SelectResult a = ws.sampled_select(v, 5.0, 256, rng_a);
  const SelectResult b = ws.sampled_select(v, 5.0, 256, rng_b);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.kept, b.kept);
  EXPECT_EQ(a.key, ws.select(v, 5.0).key);

  // sample_size == 0 also means exact.
  util::Rng rng_c(7);
  EXPECT_EQ(ws.sampled_select(v, 5.0, 0, rng_c).key, ws.select(v, 5.0).key);
}

TEST(SelectSampled, SampledKeptCountIsExactForTheEstimate) {
  SparsifyWorkspace ws;
  const auto v = edge_case_values(20000, 43, false);
  util::Rng rng(3);
  const SelectResult sel = ws.sampled_select(v, 1.0, 1024, rng);
  std::size_t expect = 0;
  for (float x : v)
    expect += magnitude_key(x) >= sel.key && magnitude_key(x) != 0;
  EXPECT_EQ(sel.kept, expect);

  // The estimate is usable by the fused compaction: sizes must line up.
  LayerChunk chunk;
  ws.compact_copy(0, v, sel, chunk);
  EXPECT_EQ(chunk.nnz(), sel.kept);
}

// --------------------------------------------------------- allocation-free

/// Run `iters` iterations of the full worker sparsify loop
/// (step -> recycle) against `algo`, refreshing gradients in place, and
/// return how many heap allocations the loop performed.
std::uint64_t count_step_allocations(core::WorkerAlgorithm& algo,
                                     std::vector<std::vector<float>>& grads,
                                     core::GradViews& views, util::Rng& rng,
                                     int iters) {
  const std::uint64_t before = g_allocation_count.load();
  for (int it = 0; it < iters; ++it) {
    for (auto& g : grads)
      for (auto& x : g) x = static_cast<float>(rng.normal(0, 1));
    sparse::SparseUpdate update = algo.step(views, 0.1f, 0);
    algo.recycle(std::move(update));
  }
  return g_allocation_count.load() - before;
}

void check_steady_state_allocation_free(core::WorkerAlgorithm& algo) {
  const std::vector<std::size_t> sizes{50000, 4000, 33000};
  std::vector<std::vector<float>> grads;
  for (std::size_t s : sizes) grads.emplace_back(s);
  core::GradViews views;
  for (auto& g : grads) views.emplace_back(g.data(), g.size());
  util::Rng rng(7);

  // Warm-up: let every scratch buffer, chunk and pool entry reach its
  // high-water capacity (selection output sizes vary run to run, so one
  // iteration is not enough).
  (void)count_step_allocations(algo, grads, views, rng, 12);
  // Steady state: the fused sparsify path must not touch the heap at all.
  const std::uint64_t allocs =
      count_step_allocations(algo, grads, views, rng, 8);
  EXPECT_EQ(allocs, 0u);
}

TEST(SelectAllocations, SAMomentumSteadyStateIsAllocationFree) {
  core::CompressionConfig compression;
  compression.ratio_percent = 1.0;
  core::SAMomentum algo({50000, 4000, 33000}, compression, 0.9f);
  check_steady_state_allocation_free(algo);
}

TEST(SelectAllocations, GradientDroppingSteadyStateIsAllocationFree) {
  core::CompressionConfig compression;
  compression.ratio_percent = 1.0;
  core::GradientDropping algo({50000, 4000, 33000}, compression);
  check_steady_state_allocation_free(algo);
}

TEST(SelectAllocations, WorkspaceSparsifyIsAllocationFreeOnceWarm) {
  SparsifyWorkspace ws;
  util::Rng rng(9);
  std::vector<float> v(100000);
  LayerChunk chunk;
  for (int warm = 0; warm < 8; ++warm) {
    for (auto& x : v) x = static_cast<float>(rng.normal(0, 1));
    ws.sparsify_copy(0, v, 1.0, chunk);
    ws.sparsify_zero(1, {v.data(), v.size()}, 1.0, chunk);
  }
  const std::uint64_t before = g_allocation_count.load();
  for (int it = 0; it < 4; ++it) {
    for (auto& x : v) x = static_cast<float>(rng.normal(0, 1));
    ws.sparsify_copy(0, v, 1.0, chunk);
    ws.sparsify_zero(1, {v.data(), v.size()}, 1.0, chunk);
  }
  EXPECT_EQ(g_allocation_count.load() - before, 0u);
}

}  // namespace
