// Chaos suite: seeded fault schedules (drop / dup / delay / reorder / kill)
// against both engines, plus unit coverage for the FaultPlan decision
// stream, duplicate-push idempotence and lease reclaim/resync.
//
// Everything here is deterministic: FaultPlan is a pure hash of
// (seed, direction, worker, seq, attempt), so a failing seed reproduces
// exactly. Registered under the `chaos` ctest label (the soak preset
// re-runs it; see CMakePresets.json).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "comm/fault.h"
#include "comm/transport.h"
#include "core/payload.h"
#include "core/server.h"
#include "core/session.h"
#include "core/worker.h"
#include "data/synthetic.h"

namespace {

using namespace dgs;
using core::Method;

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlan, SameSeedSameDecisionStream) {
  comm::FaultConfig config;
  config.seed = 1234;
  config.drop_pct = 10.0;
  config.dup_pct = 5.0;
  config.delay_pct = 5.0;
  config.reorder_pct = 5.0;
  comm::FaultPlan a(config), b(config);
  for (std::uint64_t seq = 1; seq <= 2000; ++seq)
    for (std::size_t worker = 0; worker < 3; ++worker)
      ASSERT_EQ(a.classify(comm::FaultDirection::kPush, worker, seq, 0),
                b.classify(comm::FaultDirection::kPush, worker, seq, 0))
          << "worker " << worker << " seq " << seq;
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  comm::FaultConfig config;
  config.drop_pct = 50.0;
  config.seed = 1;
  comm::FaultPlan a(config);
  config.seed = 2;
  comm::FaultPlan b(config);
  int same = 0;
  for (std::uint64_t seq = 1; seq <= 256; ++seq)
    same += a.classify(comm::FaultDirection::kPush, 0, seq, 0) ==
            b.classify(comm::FaultDirection::kPush, 0, seq, 0);
  EXPECT_LT(same, 230);  // ~50% agreement expected, not ~100%
}

TEST(FaultPlan, DropRateMatchesConfiguredPercent) {
  comm::FaultConfig config;
  config.seed = 99;
  config.drop_pct = 10.0;
  comm::FaultPlan plan(config);
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    drops += plan.classify(comm::FaultDirection::kReply, 1,
                           static_cast<std::uint64_t>(i + 1),
                           0) == comm::FaultAction::kDrop;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.10, 0.01);
}

TEST(FaultPlan, RetransmitRollsAFreshDie) {
  // A retransmission (same seq, higher attempt) must not inherit the
  // original's fate, or a dropped message could never be healed.
  comm::FaultConfig config;
  config.seed = 7;
  config.drop_pct = 40.0;
  comm::FaultPlan plan(config);
  int healed = 0, dropped = 0;
  for (std::uint64_t seq = 1; seq <= 500; ++seq) {
    if (plan.classify(comm::FaultDirection::kPush, 0, seq, 0) !=
        comm::FaultAction::kDrop)
      continue;
    ++dropped;
    healed += plan.classify(comm::FaultDirection::kPush, 0, seq, 1) !=
              comm::FaultAction::kDrop;
  }
  ASSERT_GT(dropped, 100);
  EXPECT_GT(healed, dropped / 3);  // ~60% of retries deliver
}

TEST(FaultPlan, ControlMessagesAreExempt) {
  comm::Message rejoin, full, stop;
  rejoin.kind = comm::MessageKind::kRejoinRequest;
  full.kind = comm::MessageKind::kFullModel;
  stop.kind = comm::MessageKind::kShutdown;
  EXPECT_TRUE(comm::is_control_message(rejoin));
  EXPECT_TRUE(comm::is_control_message(full));
  EXPECT_TRUE(comm::is_control_message(stop));
  comm::Message push;
  push.kind = comm::MessageKind::kGradientPush;
  EXPECT_FALSE(comm::is_control_message(push));
}

// ------------------------------------------------- FaultySimTransport arrivals

TEST(FaultySimTransport, ArrivalListsMatchActions) {
  comm::FaultConfig config;
  config.seed = 42;
  config.drop_pct = 30.0;
  config.dup_pct = 30.0;
  comm::FaultPlan plan(config);
  comm::SimTransport inner(comm::NetworkModel::ideal());
  comm::FaultySimTransport faulty(inner, &plan);

  comm::Message msg;
  msg.worker_id = 0;
  msg.payload.resize(64);
  int drops = 0, dups = 0, singles = 0;
  for (std::uint64_t seq = 1; seq <= 400; ++seq) {
    msg.seq = seq;
    const auto arrivals = faulty.send_push(0.0, msg);
    if (arrivals.empty())
      ++drops;
    else if (arrivals.size() == 2)
      ++dups;
    else
      ++singles;
  }
  EXPECT_GT(drops, 60);
  EXPECT_GT(dups, 60);
  EXPECT_GT(singles, 60);
  // Dropped messages still crossed the wire: every send was counted.
  EXPECT_EQ(inner.bytes().upward_messages, 400u + static_cast<unsigned>(dups));
}

// -------------------------------------------------- duplicate-push dedup

core::TrainConfig tiny_config(std::size_t workers) {
  core::TrainConfig config;
  config.method = Method::kDGS;
  config.num_workers = workers;
  config.batch_size = 8;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.seed = 13;
  return config;
}

data::SyntheticDataset tiny_data(std::uint64_t seed = 5) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(seed);
  dspec.num_train = 256;
  dspec.num_test = 64;
  return data::make_synthetic(dspec);
}

TEST(ChaosServer, DuplicatedPushesAreIdempotent) {
  const auto data = tiny_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  const auto config = tiny_config(1);
  const auto theta0 = core::initial_parameters(spec, config.seed);
  nn::ModulePtr probe = spec.build();
  core::ParameterServer server(nn::param_layer_sizes(probe->parameters()),
                               theta0, {.num_workers = 1});
  core::Worker worker(0, spec, data.train, config, theta0);

  auto it = worker.compute_and_pack();
  it.push.seq = 1;
  const auto reply1 = server.handle_push(it.push);
  EXPECT_EQ(server.step(), 1u);
  EXPECT_EQ(reply1.seq, 1u);

  // Same seq again: the gradient must not be re-applied and the timestamp
  // must not advance, but the dup still gets a consistent G = M - v reply.
  bool duplicate = false;
  const auto model_before = server.global_model_flat();
  it.push.attempt = 2;  // pretend this copy is the second retransmit
  const auto reply2 = server.handle_push(it.push, nullptr, &duplicate);
  EXPECT_TRUE(duplicate);
  EXPECT_EQ(server.step(), 1u);
  EXPECT_EQ(server.duplicate_pushes(), 1u);
  EXPECT_EQ(server.global_model_flat(), model_before);
  // The reply echoes the attempt: the fault plan must roll a fresh die for
  // a retransmit's reply, or a once-dropped reply would be dropped forever.
  EXPECT_EQ(reply2.attempt, 2u);

  // Whichever copy the worker applies, Eq. 5 holds: apply both in order.
  worker.apply_model_diff(reply1);
  worker.apply_model_diff(reply2);
  const auto global = server.global_model_flat();
  const auto local = worker.model_flat();
  ASSERT_EQ(global.size(), local.size());
  for (std::size_t i = 0; i < global.size(); ++i)
    ASSERT_NEAR(global[i], local[i], 1e-4) << "coordinate " << i;
}

TEST(ChaosServer, LeaseReclaimZeroesTrackerAndResyncs) {
  const auto data = tiny_data(7);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  const auto config = tiny_config(2);
  const auto theta0 = core::initial_parameters(spec, config.seed);
  nn::ModulePtr probe = spec.build();
  const auto sizes = nn::param_layer_sizes(probe->parameters());
  core::ServerOptions options;
  options.num_workers = 2;
  options.lease_timeout_s = 1.0;
  core::ParameterServer server(sizes, theta0, options);
  core::Worker w0(0, spec, data.train, config, theta0);
  core::Worker w1(1, spec, data.train, config, theta0);

  std::uint64_t seq0 = 0, seq1 = 0;
  auto exchange = [&](core::Worker& w, std::uint64_t& seq, double now) {
    auto it = w.compute_and_pack();
    it.push.seq = ++seq;
    const auto reply = server.handle_push(it.push);
    server.touch_lease(static_cast<std::size_t>(it.push.worker_id), now);
    w.apply_model_diff(reply);
  };
  exchange(w0, seq0, 0.0);
  exchange(w1, seq1, 0.0);
  exchange(w0, seq0, 0.5);

  // Worker 1 goes silent past the lease: its tracker is reclaimed.
  EXPECT_EQ(server.reclaim_expired_leases(0.9), 0u);  // nothing expired yet
  exchange(w0, seq0, 1.2);
  ASSERT_EQ(server.reclaim_expired_leases(1.2), 1u);
  EXPECT_EQ(server.leases_reclaimed(), 1u);
  EXPECT_FALSE(server.lease_active(1));
  for (const auto& layer : server.sent_accumulator(1))
    for (float v : layer) ASSERT_EQ(v, 0.0f);

  // Its next push cannot be answered with a diff (v_1 was reset; a diff
  // would replay the whole model): the server resyncs with a full model.
  auto it = w1.compute_and_pack();
  it.push.seq = ++seq1;
  bool duplicate = false;
  const auto resync = server.handle_push(it.push, nullptr, &duplicate);
  EXPECT_TRUE(duplicate);  // engines must not count it as a training push
  ASSERT_EQ(resync.kind, comm::MessageKind::kFullModel);
  EXPECT_EQ(server.full_model_resyncs(), 1u);
  server.touch_lease(1, 1.3);
  EXPECT_TRUE(server.lease_active(1));

  const auto snapshot = core::flatten_dense_payload(resync.payload);
  const auto global = server.global_model_flat();
  ASSERT_EQ(snapshot.size(), global.size());
  for (std::size_t i = 0; i < global.size(); ++i)
    ASSERT_FLOAT_EQ(snapshot[i], global[i]) << "coordinate " << i;

  // After installing the snapshot, v_1 == M so the next exchange is a
  // normal diff and Eq. 5 holds again.
  w1.set_model(snapshot);
  exchange(w1, seq1, 1.4);
  const auto local = w1.model_flat();
  const auto after = server.global_model_flat();
  for (std::size_t i = 0; i < after.size(); ++i)
    ASSERT_NEAR(after[i], local[i], 1e-4) << "coordinate " << i;
}

// -------------------------------------------------------- engine chaos runs

data::SyntheticDataset chaos_data(std::uint64_t seed = 51) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(seed);
  dspec.num_train = 512;
  dspec.num_test = 256;
  return data::make_synthetic(dspec);
}

core::TrainConfig chaos_config(std::size_t workers) {
  core::TrainConfig config;
  config.method = Method::kDGS;
  config.num_workers = workers;
  config.batch_size = 16;
  config.epochs = 4;
  config.lr = 0.02;
  config.seed = 53;
  config.record_curve = false;
  return config;
}

/// The headline schedule from DESIGN.md §11: 10% drops both ways plus one
/// mid-run worker crash, leases armed so the dead worker's tracker is
/// reclaimed before it rejoins.
comm::FaultConfig headline_faults() {
  comm::FaultConfig fault;
  fault.seed = 99;
  fault.drop_pct = 10.0;
  fault.kill_worker = 1;
  fault.kill_at_step = 3;
  // A dropped push stretches the inter-push gap to one iteration plus the
  // retransmit timeout (~13ms); the lease must sit above that so healthy
  // workers are not churned through full-model resyncs, but below the
  // crashed worker's downtime so its tracker is reclaimed before rejoin.
  fault.retransmit_timeout_s = 8e-3;
  fault.lease_timeout_s = 30e-3;
  fault.rejoin_delay_s = 50e-3;
  return fault;
}

TEST(ChaosRun, DropTenPctPlusKillStillConverges) {
  const auto data = chaos_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {24},
                                       data.train->num_classes());
  auto config = chaos_config(4);
  const auto clean = core::SimEngine(spec, data.train, data.test, config).run();

  config.fault = headline_faults();
  const auto faulted =
      core::SimEngine(spec, data.train, data.test, config).run();

  // The run completed, injected real faults, reclaimed the dead worker's
  // lease and brought it back.
  EXPECT_GT(faulted.faults_injected, 0u);
  EXPECT_GT(faulted.leases_reclaimed, 0u);
  EXPECT_GE(faulted.worker_rejoins, 1u);
  EXPECT_GE(faulted.samples_processed, 4ull * data.train->size());

  // Convergence within 2x the fault-free loss (acceptance bar): drops are
  // healed by retransmission and the crash costs one worker's optimizer
  // state, not the training run.
  EXPECT_GT(clean.final_train_loss, 0.0);
  EXPECT_LT(faulted.final_train_loss, 2.0 * clean.final_train_loss)
      << "faulted " << faulted.final_train_loss << " vs clean "
      << clean.final_train_loss;
  EXPECT_GT(faulted.final_test_accuracy, clean.final_test_accuracy - 0.1)
      << "faulted " << faulted.final_test_accuracy << " vs clean "
      << clean.final_test_accuracy << " (leases reclaimed "
      << faulted.leases_reclaimed << ", rejoins " << faulted.worker_rejoins
      << ", faults " << faulted.faults_injected << ")";
}

TEST(ChaosRun, SeededScheduleIsReproducible) {
  const auto data = chaos_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {24},
                                       data.train->num_classes());
  auto config = chaos_config(4);
  config.fault = headline_faults();

  const auto a = core::SimEngine(spec, data.train, data.test, config).run();
  const auto b = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_EQ(a.final_model, b.final_model);  // byte-for-byte
  EXPECT_EQ(a.bytes.upward_bytes, b.bytes.upward_bytes);
  EXPECT_EQ(a.bytes.downward_bytes, b.bytes.downward_bytes);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.leases_reclaimed, b.leases_reclaimed);
  EXPECT_EQ(a.worker_rejoins, b.worker_rejoins);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
}

TEST(ChaosRun, DelayAndReorderStillConverge) {
  const auto data = chaos_data(57);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {24},
                                       data.train->num_classes());
  auto config = chaos_config(3);
  config.fault.seed = 17;
  config.fault.delay_pct = 15.0;
  config.fault.reorder_pct = 15.0;
  config.fault.delay_s = 8e-3;

  const auto r = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GE(r.samples_processed, 4ull * data.train->size());
  EXPECT_GT(r.final_test_accuracy, 0.5);
}

TEST(ChaosRun, DuplicatesAreDedupedBySeq) {
  const auto data = chaos_data(61);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {24},
                                       data.train->num_classes());
  auto config = chaos_config(3);
  config.fault.seed = 23;
  config.fault.dup_pct = 20.0;

  const auto r = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(r.faults_injected, 0u);
  // Duplicated pushes must not double-apply gradients or double-count
  // samples: the budget-driven sample count stays in its fault-free band.
  const std::uint64_t budget = 4ull * data.train->size();
  EXPECT_GE(r.samples_processed, budget);
  EXPECT_LE(r.samples_processed, budget + 3 * config.batch_size);
  EXPECT_GT(r.final_test_accuracy, 0.5);
}

// Real threads: drops, dups, a kill and leases together, sized to stay
// TSan-friendly (scripts/run_tsan.sh runs this binary under ThreadSanitizer).
TEST(ChaosRun, ThreadEngineSurvivesChaos) {
  const auto data = tiny_data(67);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = tiny_config(3);
  config.batch_size = 16;
  config.epochs = 2;
  config.record_curve = false;
  config.fault.seed = 31;
  config.fault.drop_pct = 5.0;
  config.fault.dup_pct = 5.0;
  config.fault.kill_worker = 1;
  config.fault.kill_at_step = 2;
  config.fault.rejoin_delay_s = 10e-3;
  config.fault.lease_timeout_s = 250e-3;  // wall clock: generous under TSan
  config.fault.retransmit_timeout_s = 20e-3;

  const auto r = core::ThreadEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GE(r.worker_rejoins, 1u);
  EXPECT_GE(r.samples_processed, 2ull * data.train->size());
  EXPECT_GT(r.final_test_accuracy, 0.3);
  EXPECT_FALSE(r.final_model.empty());
}

// ------------------------------------------- cross-process chaos (sockets)

// Real OS processes over a Unix socket. The scheduled kill here is a
// literal SIGKILL of the worker's process mid-push: no destructors, no
// flushes — the frame it was mid-way through dies in the socket buffer.
// The server must (a) survive the torn stream, (b) reclaim the dead
// worker's lease, and (c) warm-start the pre-forked standby process via a
// kFullModel resync, all observed from the parent.
TEST(ProcessChaos, UdsKillDashNineReclaimsLeaseAndRejoins) {
  const auto data = tiny_data(83);
  // A wider hidden layer slows each iteration enough that the run
  // comfortably outlasts the rejoin downtime (real wall-clock recovery
  // needs a run measured in hundreds of pushes, not tens).
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {64},
                                       data.train->num_classes());
  auto config = tiny_config(3);
  config.batch_size = 16;
  config.epochs = 32;
  config.record_curve = false;
  config.transport = core::TransportKind::kUds;
  config.fault.seed = 41;
  config.fault.kill_worker = 1;
  config.fault.kill_at_step = 2;
  // Lease shorter than the rejoin downtime: the reclaim must be observed
  // before the standby re-registers. Survivors push every ~0.1ms, so the
  // expired lease is noticed well inside the downtime window, and the
  // ~70ms run dwarfs the 10ms downtime so the rejoin lands long before
  // the sample budget runs out.
  config.fault.lease_timeout_s = 4e-3;
  config.fault.rejoin_delay_s = 10e-3;
  config.fault.retransmit_timeout_s = 20e-3;

  const auto r = core::ProcessEngine(spec, data.train, data.test, config).run();
  EXPECT_GE(r.worker_rejoins, 1u);     // the standby process re-registered
  EXPECT_GE(r.leases_reclaimed, 1u);   // v_k was reset while it was dead
  EXPECT_GE(r.samples_processed, 32ull * data.train->size());
  EXPECT_GT(r.final_test_accuracy, 0.3);
  EXPECT_FALSE(r.final_model.empty());
}

// Reply-direction drops over a real socket: the worker's retransmit
// deadline (a real steady_clock timeout now, not a channel convention)
// must heal every lost reply. Gradient conservation shows up as exact
// sample accounting: a retransmitted push is deduped by seq, never applied
// twice, so accepted samples stay in the fault-free band.
TEST(ProcessChaos, UdsReplyDropsHealByRetransmit) {
  const auto data = tiny_data(89);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = tiny_config(2);
  config.batch_size = 16;
  config.epochs = 3;
  config.record_curve = false;
  config.transport = core::TransportKind::kUds;
  config.fault.seed = 43;
  config.fault.drop_pct = 10.0;
  config.fault.faults_on_pushes = false;  // reply direction only
  config.fault.retransmit_timeout_s = 15e-3;

  const auto r = core::ProcessEngine(spec, data.train, data.test, config).run();
  EXPECT_GT(r.faults_injected, 0u);  // parent-side reply classifications
  const std::uint64_t budget = 3ull * data.train->size();
  EXPECT_GE(r.samples_processed, budget);
  // Dedup means duplicates add no samples: the overshoot is bounded by one
  // in-flight push per worker.
  EXPECT_LE(r.samples_processed,
            budget + config.num_workers * config.batch_size);
  EXPECT_GT(r.final_test_accuracy, 0.3);
}

// Push-direction drops: classified inside the worker *process* from the
// same pure-hash schedule, healed by the same retransmit path.
TEST(ProcessChaos, UdsPushDropsHealByRetransmit) {
  const auto data = tiny_data(97);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = tiny_config(2);
  config.batch_size = 16;
  config.epochs = 3;
  config.record_curve = false;
  config.transport = core::TransportKind::kUds;
  config.fault.seed = 47;
  config.fault.drop_pct = 10.0;
  config.fault.faults_on_replies = false;  // push direction only
  config.fault.retransmit_timeout_s = 15e-3;

  const auto r = core::ProcessEngine(spec, data.train, data.test, config).run();
  const std::uint64_t budget = 3ull * data.train->size();
  EXPECT_GE(r.samples_processed, budget);
  EXPECT_LE(r.samples_processed,
            budget + config.num_workers * config.batch_size);
  EXPECT_GT(r.final_test_accuracy, 0.3);
}

// The headline chaos schedule end-to-end over TCP: drops both ways plus
// the kill, against real processes on loopback.
TEST(ProcessChaos, TcpSurvivesDropsPlusKill) {
  const auto data = tiny_data(101);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {64},
                                       data.train->num_classes());
  auto config = tiny_config(3);
  config.batch_size = 16;
  config.epochs = 12;
  config.record_curve = false;
  config.transport = core::TransportKind::kTcp;
  config.fault.seed = 53;
  config.fault.drop_pct = 5.0;
  config.fault.kill_worker = 2;
  config.fault.kill_at_step = 2;
  config.fault.lease_timeout_s = 4e-3;
  config.fault.rejoin_delay_s = 10e-3;
  config.fault.retransmit_timeout_s = 20e-3;

  const auto r = core::ProcessEngine(spec, data.train, data.test, config).run();
  EXPECT_GE(r.worker_rejoins, 1u);
  EXPECT_GE(r.samples_processed, 12ull * data.train->size());
  EXPECT_GT(r.final_test_accuracy, 0.3);
}

}  // namespace
