// Tests for the NN substrate: layer semantics, exact gradients (central
// differences, parameterized over every layer type and model spec), loss,
// and an allocation-counter proof that the warm Conv2d+Linear training step
// never touches the heap (pooled tensors + conv workspaces + gemm scratch).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>

#include "nn/gradcheck.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it.
// Used by the AllocationFree test to prove the warm forward/backward path
// never touches the heap. Counting is process-wide, so that test must not
// call anything allocating (including gtest assertions) inside the measured
// loop. Same idiom as tests/test_select.cpp.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dgs::nn;
using dgs::tensor::Shape;
using dgs::tensor::Tensor;
using dgs::util::Rng;

Tensor random_tensor(Shape shape, Rng& rng, float stddev = 1.0f) {
  Tensor t(std::move(shape));
  t.init_normal(rng, 0.0f, stddev);
  return t;
}

// ------------------------------------------------------------ layer shapes

TEST(Linear, ForwardShapeAndBias) {
  Linear layer(3, 2);
  Rng rng(1);
  layer.init(rng);
  auto params = layer.local_parameters();
  ASSERT_EQ(params.size(), 2u);
  // Force known weights: W = [[1,0,0],[0,1,0]], b = [10, 20].
  params[0]->value.fill(0.0f);
  params[0]->value.at2(0, 0) = 1.0f;
  params[0]->value.at2(1, 1) = 1.0f;
  params[1]->value[0] = 10.0f;
  params[1]->value[1] = 20.0f;

  Tensor x = Tensor::from(Shape{1, 3}, {5, 6, 7});
  Tensor y = layer.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at2(0, 0), 15.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 26.0f);
}

TEST(Linear, NoBiasVariant) {
  Linear layer(3, 2, /*bias=*/false);
  EXPECT_EQ(layer.local_parameters().size(), 1u);
}

TEST(Linear, RejectsWrongInputShape) {
  Linear layer(3, 2);
  Tensor x(Shape{1, 4});
  EXPECT_THROW(layer.forward(x, true), std::invalid_argument);
}

TEST(ReLU, ClampsNegativeAndGradientMasks) {
  ReLU relu;
  Tensor x = Tensor::from(Shape{1, 4}, {-1, 0, 2, -3});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
  Tensor g = Tensor::from(Shape{1, 4}, {1, 1, 1, 1});
  Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0);
  EXPECT_FLOAT_EQ(gx[1], 0);  // gradient at 0 defined as 0
  EXPECT_FLOAT_EQ(gx[2], 1);
}

TEST(MaxPool2d, SelectsWindowMaxAndRoutesGradient) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor g = Tensor::from(Shape{1, 1, 1, 1}, {7.0f});
  Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[1], 7.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
}

TEST(GlobalAvgPool, AveragesSpatial) {
  GlobalAvgPool pool;
  Tensor x = Tensor::from(Shape{1, 2, 1, 2}, {1, 3, 10, 30});
  Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at2(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 20.0f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flatten;
  Tensor x(Shape{2, 3, 4, 5});
  Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  Tensor gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(BatchNorm, NormalizesPerChannel) {
  BatchNorm bn(1);
  Rng rng(2);
  bn.init(rng);
  Tensor x = Tensor::from(Shape{4, 1}, {1, 2, 3, 4});
  Tensor y = bn.forward(x, true);
  double mean = 0, var = 0;
  for (float v : y.flat()) mean += v;
  mean /= 4;
  for (float v : y.flat()) var += (v - mean) * (v - mean);
  var /= 4;
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Conv2d conv(1, 1, 1, 1, 0);
  Rng rng(3);
  conv.init(rng);
  conv.local_parameters()[0]->value[0] = 1.0f;  // 1x1 kernel = identity
  conv.local_parameters()[1]->value[0] = 0.0f;
  Tensor x = random_tensor(Shape{2, 1, 4, 4}, rng);
  Tensor y = conv.forward(x, true);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, OutputShapeWithStrideAndPad) {
  Conv2d conv(3, 8, 3, 2, 1);
  Rng rng(4);
  conv.init(rng);
  Tensor x = random_tensor(Shape{2, 3, 8, 8}, rng);
  Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4, 4}));
}

TEST(Residual, AddsShortcut) {
  auto body = std::make_unique<Sequential>();
  body->add(std::make_unique<Linear>(4, 4));
  Residual res(std::move(body));
  Rng rng(5);
  res.init(rng);
  // Zero the body so output == input exactly.
  for (auto* p : res.parameters()) p->value.zero();
  Tensor x = random_tensor(Shape{2, 4}, rng);
  Tensor y = res.forward(x, true);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

// --------------------------------------------------- warm-path allocations

// Once the tensor buffer pool, the per-layer ConvWorkspace and the gemm
// pack scratch are warm, a full Conv2d -> Flatten -> Linear forward/backward
// step must perform zero heap allocations (ISSUE acceptance criterion; the
// worker compute loop runs this shape every iteration).
TEST(AllocationFree, WarmConvLinearStepDoesNotAllocate) {
  Conv2d conv(3, 8, 3, /*stride=*/1, /*pad=*/1);
  Flatten flatten;
  Linear linear(8 * 8 * 8, 10);
  Rng rng(31);
  conv.init(rng);
  linear.init(rng);
  Tensor input = random_tensor(Shape{4, 3, 8, 8}, rng, 0.5f);

  auto step = [&]() -> float {
    Tensor y = conv.forward(input, true);
    Tensor f = flatten.forward(y, true);
    Tensor z = linear.forward(f, true);
    Tensor gz = linear.backward(z);
    Tensor gf = flatten.backward(gz);
    Tensor gx = conv.backward(gf);
    return gx[0];
  };

  // Warm: first steps size the conv workspace, the gemm pack scratch and
  // the thread-local tensor buffer pool.
  for (int i = 0; i < 3; ++i) (void)step();

  g_allocation_count.store(0, std::memory_order_relaxed);
  float sink = 0.0f;
  for (int i = 0; i < 10; ++i) sink += step();
  const std::uint64_t allocs =
      g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(allocs, 0u)
      << "warm Conv2d+Linear forward/backward touched the heap";
  EXPECT_TRUE(std::isfinite(sink));
}

// ------------------------------------------------------------------- loss

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits(Shape{2, 10});
  const LossResult r = softmax_cross_entropy(logits, {3, 7});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Rng rng(6);
  Tensor logits = random_tensor(Shape{4, 5}, rng);
  const LossResult r = softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (std::size_t n = 0; n < 4; ++n) {
    double s = 0;
    for (std::size_t c = 0; c < 5; ++c) s += r.grad.at2(n, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Rng rng(7);
  Tensor logits = random_tensor(Shape{3, 4}, rng);
  const std::vector<std::int32_t> labels{1, 0, 3};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const double h = 1e-3;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor up = logits, down = logits;
    up[i] += static_cast<float>(h);
    down[i] -= static_cast<float>(h);
    const double num =
        (softmax_loss_only(up, labels) - softmax_loss_only(down, labels)) /
        (2 * h);
    EXPECT_NEAR(r.grad[i] * 3.0 /* grad of mean */, num * 3.0, 1e-3);
  }
}

TEST(Loss, CountsCorrectPredictions) {
  Tensor logits = Tensor::from(Shape{2, 3}, {0, 5, 0, 9, 0, 0});
  EXPECT_EQ(count_correct(logits, {1, 0}), 2u);
  EXPECT_EQ(count_correct(logits, {0, 0}), 1u);
}

TEST(Loss, RejectsBadInputs) {
  Tensor logits(Shape{2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 5}), std::invalid_argument);
}

// --------------------------------------------------- gradient check sweeps

struct LayerCase {
  std::string name;
  std::function<ModulePtr()> make;
  Shape input_shape;
};

class LayerGradCheck : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerGradCheck, CentralDifferenceAgrees) {
  const LayerCase& c = GetParam();
  ModulePtr module = c.make();
  Rng rng(42);
  module->init(rng);
  Tensor input = random_tensor(c.input_shape, rng, 0.5f);
  const GradCheckResult r = gradient_check(*module, input, rng);
  EXPECT_TRUE(r.ok) << c.name << ": max rel error " << r.max_rel_error
                    << " over " << r.checked << " coords";
}

INSTANTIATE_TEST_SUITE_P(
    Layers, LayerGradCheck,
    ::testing::Values(
        LayerCase{"linear", [] { return std::make_unique<Linear>(6, 4); },
                  Shape{3, 6}},
        LayerCase{"linear_nobias",
                  [] { return std::make_unique<Linear>(5, 3, false); },
                  Shape{2, 5}},
        LayerCase{"linear_batch1", [] { return std::make_unique<Linear>(7, 4); },
                  Shape{1, 7}},
        LayerCase{"tanh", [] { return std::make_unique<Tanh>(); }, Shape{2, 7}},
        LayerCase{"conv3x3",
                  [] { return std::make_unique<Conv2d>(2, 3, 3, 1, 1); },
                  Shape{2, 2, 5, 5}},
        LayerCase{"conv_stride2",
                  [] { return std::make_unique<Conv2d>(1, 2, 3, 2, 1); },
                  Shape{2, 1, 6, 6}},
        LayerCase{"conv_pad2",
                  [] { return std::make_unique<Conv2d>(2, 2, 3, 1, 2); },
                  Shape{1, 2, 4, 4}},
        LayerCase{"conv_nonsquare",
                  [] { return std::make_unique<Conv2d>(2, 3, 3, 2, 1); },
                  Shape{2, 2, 5, 7}},
        LayerCase{"batchnorm2d",
                  [] { return std::make_unique<BatchNorm>(3); },
                  Shape{4, 3, 2, 2}},
        LayerCase{"batchnorm1d",
                  [] { return std::make_unique<BatchNorm>(5); }, Shape{6, 5}},
        LayerCase{"gap", [] { return std::make_unique<GlobalAvgPool>(); },
                  Shape{2, 3, 4, 4}},
        LayerCase{"mlp_stack",
                  [] {
                    auto s = std::make_unique<Sequential>();
                    s->add(std::make_unique<Linear>(5, 8));
                    s->add(std::make_unique<Tanh>());
                    s->add(std::make_unique<Linear>(8, 3));
                    return s;
                  },
                  Shape{4, 5}},
        LayerCase{"residual_mlp",
                  [] {
                    auto body = std::make_unique<Sequential>();
                    body->add(std::make_unique<Linear>(6, 6));
                    body->add(std::make_unique<Tanh>());
                    return std::make_unique<Residual>(std::move(body));
                  },
                  Shape{3, 6}}),
    [](const auto& info) { return info.param.name; });

class ModelSpecGradCheck : public ::testing::TestWithParam<ModelSpec> {};

TEST_P(ModelSpecGradCheck, BuildsAndGradientsAgree) {
  const ModelSpec& spec = GetParam();
  ModulePtr model = spec.build();
  Rng rng(99);
  model->init(rng);
  Tensor input(spec.input_shape(2));
  input.init_normal(rng, 0.0f, 0.5f);
  GradCheckOptions options;
  options.samples_per_param = 4;
  options.input_samples = 4;
  // Full models stack many ReLUs on batch-stat normalization, so a few
  // sampled coordinates land on kinks where central differences are simply
  // wrong (the per-layer checks above cover exact correctness). Tolerate
  // those: absolute floor 5e-3, relative 20%.
  options.rel_tolerance = 0.20;
  options.abs_tolerance = 5e-3;
  const GradCheckResult r = gradient_check(*model, input, rng, options);
  EXPECT_TRUE(r.ok) << spec.name() << ": max rel error " << r.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    ModelZoo, ModelSpecGradCheck,
    ::testing::Values(ModelSpec::mlp(10, {16, 8}, 4),
                      ModelSpec::res_mlp(8, 12, 2, 3),
                      ModelSpec::cnn(2, 8, 8, 4, 5),
                      ModelSpec::resnet_lite(2, 6, 6, 4, 1, 3)),
    [](const auto& info) { return info.param.name(); });

// --------------------------------------------------------- model utilities

TEST(ModelSpec, FeatureDimAndInputShape) {
  const auto mlp = ModelSpec::mlp(20, {8}, 4);
  EXPECT_EQ(mlp.feature_dim(), 20u);
  EXPECT_EQ(mlp.input_shape(3), (Shape{3, 20}));
  const auto cnn = ModelSpec::cnn(3, 8, 8, 4, 10);
  EXPECT_EQ(cnn.feature_dim(), 3u * 8u * 8u);
  EXPECT_EQ(cnn.input_shape(2), (Shape{2, 3, 8, 8}));
}

TEST(ParamUtils, GatherScatterRoundTrip) {
  const auto spec = ModelSpec::mlp(6, {5}, 3);
  ModulePtr model = spec.build();
  Rng rng(8);
  model->init(rng);
  auto params = model->parameters();
  const auto flat = param_gather_values(params);
  EXPECT_EQ(flat.size(), param_numel(params));

  ModulePtr clone = spec.build();
  auto clone_params = clone->parameters();
  param_scatter_values(flat, clone_params);
  EXPECT_EQ(param_gather_values(clone_params), flat);
}

TEST(ParamUtils, LayerSizesMatchStructure) {
  const auto spec = ModelSpec::mlp(6, {5}, 3);
  ModulePtr model = spec.build();
  const auto sizes = param_layer_sizes(model->parameters());
  // linear(6->5): W 30 + b 5; linear(5->3): W 15 + b 3.
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 30u);
  EXPECT_EQ(sizes[1], 5u);
  EXPECT_EQ(sizes[2], 15u);
  EXPECT_EQ(sizes[3], 3u);
}

TEST(ParamUtils, ZeroGrads) {
  const auto spec = ModelSpec::mlp(4, {3}, 2);
  ModulePtr model = spec.build();
  auto params = model->parameters();
  Rng rng(9);
  model->init(rng);
  Tensor x = random_tensor(Shape{2, 4}, rng);
  Tensor y = model->forward(x, true);
  Tensor g(y.shape());
  g.fill(1.0f);
  (void)model->backward(g);
  bool any_nonzero = false;
  for (auto* p : params)
    for (float v : p->grad.flat()) any_nonzero |= (v != 0.0f);
  EXPECT_TRUE(any_nonzero);
  param_zero_grads(params);
  for (auto* p : params)
    for (float v : p->grad.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(ParamUtils, ScatterSizeMismatchThrows) {
  const auto spec = ModelSpec::mlp(4, {3}, 2);
  ModulePtr model = spec.build();
  auto params = model->parameters();
  std::vector<float> wrong(3);
  EXPECT_THROW(param_scatter_values(wrong, params), std::invalid_argument);
}

TEST(ModelSpec, InitIsDeterministicGivenSeed) {
  const auto spec = ModelSpec::res_mlp(8, 12, 2, 3);
  ModulePtr a = spec.build(), b = spec.build();
  Rng ra(123), rb(123);
  a->init(ra);
  b->init(rb);
  EXPECT_EQ(param_gather_values(a->parameters()),
            param_gather_values(b->parameters()));
}

}  // namespace
