// Tests for the quantization substrate (TernGrad, QSGD, random dropping,
// sparse-ternary codec) and the §6 future-work worker algorithms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/optimizer_ext.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "sparse/quantize.h"
#include "util/rng.h"

namespace {

using namespace dgs;

std::vector<float> random_values(std::size_t n, std::uint64_t seed,
                                 float stddev = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal(0.0f, stddev);
  return v;
}

// ------------------------------------------------------------------ ternary

TEST(Ternary, ValuesAreInScaleTriple) {
  const auto v = random_values(256, 1);
  util::Rng rng(2);
  const auto q = sparse::ternary_quantize(0, v, rng);
  const auto d = sparse::ternary_dequantize(q);
  float maxabs = 0.0f;
  for (float x : v) maxabs = std::max(maxabs, std::fabs(x));
  EXPECT_FLOAT_EQ(q.scale, maxabs);
  for (float x : d)
    EXPECT_TRUE(x == 0.0f || x == q.scale || x == -q.scale) << x;
}

TEST(Ternary, UnbiasedInExpectation) {
  // Average many independent quantizations; must approach the input.
  const std::vector<float> v{0.5f, -0.25f, 1.0f, 0.0f, -0.75f};
  util::Rng rng(3);
  std::vector<double> acc(v.size(), 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto q = sparse::ternary_quantize(0, v, rng);
    const auto d = sparse::ternary_dequantize(q);
    for (std::size_t i = 0; i < v.size(); ++i) acc[i] += d[i];
  }
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(acc[i] / trials, v[i], 0.02) << "coordinate " << i;
}

TEST(Ternary, AllZeroInputStaysZero) {
  const std::vector<float> v(64, 0.0f);
  util::Rng rng(4);
  const auto q = sparse::ternary_quantize(0, v, rng);
  for (float x : sparse::ternary_dequantize(q)) EXPECT_EQ(x, 0.0f);
}

TEST(Ternary, CodecRoundTrip) {
  util::Rng rng(5);
  sparse::TernaryUpdate update;
  update.layers.push_back(sparse::ternary_quantize(0, random_values(100, 6), rng));
  update.layers.push_back(sparse::ternary_quantize(3, random_values(33, 7), rng));
  const auto bytes = sparse::encode(update);
  EXPECT_EQ(bytes.size(), sparse::encoded_size(update));
  EXPECT_TRUE(sparse::is_ternary_payload(bytes));
  const auto decoded = sparse::decode_ternary(bytes);
  ASSERT_EQ(decoded.layers.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(decoded.layers[j].scale, update.layers[j].scale);
    EXPECT_EQ(decoded.layers[j].packed, update.layers[j].packed);
    EXPECT_EQ(decoded.layers[j].dense_size, update.layers[j].dense_size);
  }
}

TEST(Ternary, WireCostIsTwoBitsPerElement) {
  util::Rng rng(8);
  sparse::TernaryUpdate update;
  update.layers.push_back(sparse::ternary_quantize(0, random_values(4000, 9), rng));
  // 8 header + 12 layer header + 1000 packed bytes.
  EXPECT_EQ(sparse::encoded_size(update), 8u + 12u + 1000u);
}

TEST(Ternary, DecodeRejectsCorruption) {
  util::Rng rng(10);
  sparse::TernaryUpdate update;
  update.layers.push_back(sparse::ternary_quantize(0, random_values(40, 11), rng));
  auto bytes = sparse::encode(update);
  bytes.pop_back();
  EXPECT_THROW(sparse::decode_ternary(bytes), std::runtime_error);
  bytes = sparse::encode(update);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(sparse::decode_ternary(bytes), std::runtime_error);
}

// --------------------------------------------------------------------- qsgd

TEST(Qsgd, UnbiasedInExpectation) {
  const std::vector<float> v{0.4f, -0.2f, 0.9f, 0.05f};
  util::Rng rng(12);
  std::vector<double> acc(v.size(), 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto q = sparse::qsgd_quantize(0, v, rng);
    const auto d = sparse::qsgd_dequantize(q);
    for (std::size_t i = 0; i < v.size(); ++i) acc[i] += d[i];
  }
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(acc[i] / trials, v[i], 0.02) << "coordinate " << i;
}

TEST(Qsgd, QuantizationErrorBounded) {
  const auto v = random_values(512, 13);
  util::Rng rng(14);
  const auto q = sparse::qsgd_quantize(0, v, rng);
  const auto d = sparse::qsgd_dequantize(q);
  const float bucket = q.norm / sparse::kQsgdLevels;
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_LE(std::fabs(d[i] - v[i]), bucket + 1e-5f);
}

TEST(Qsgd, ZeroVector) {
  const std::vector<float> v(16, 0.0f);
  util::Rng rng(15);
  const auto q = sparse::qsgd_quantize(0, v, rng);
  for (float x : sparse::qsgd_dequantize(q)) EXPECT_EQ(x, 0.0f);
}

// ------------------------------------------------------------ random drop

TEST(RandomDrop, UnbiasedInExpectation) {
  const std::vector<float> v{1.0f, -2.0f, 0.5f};
  util::Rng rng(16);
  std::vector<double> acc(v.size(), 0.0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const auto chunk = sparse::random_drop(0, v, 0.25, rng);
    for (std::size_t i = 0; i < chunk.nnz(); ++i)
      acc[chunk.idx[i]] += chunk.val[i];
  }
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(acc[i] / trials, v[i], 0.05) << "coordinate " << i;
}

TEST(RandomDrop, KeepFractionApproximatesP) {
  const auto v = random_values(20000, 17);
  util::Rng rng(18);
  const auto chunk = sparse::random_drop(0, v, 0.1, rng);
  EXPECT_NEAR(static_cast<double>(chunk.nnz()) / v.size(), 0.1, 0.01);
}

TEST(RandomDrop, RejectsBadProbability) {
  const std::vector<float> v{1.0f};
  util::Rng rng(19);
  EXPECT_THROW(sparse::random_drop(0, v, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(sparse::random_drop(0, v, 1.5, rng), std::invalid_argument);
}

// ------------------------------------------------------- sparse-ternary

TEST(SparseTernary, RoundTripAndCost) {
  sparse::SparseUpdate update;
  sparse::LayerChunk chunk;
  chunk.layer = 1;
  chunk.dense_size = 100;
  chunk.idx = {3, 17, 41, 99};
  chunk.val = {0.5f, -0.5f, 0.5f, -0.5f};
  update.layers.push_back(chunk);
  const auto bytes = sparse::encode_sparse_ternary(update);
  EXPECT_TRUE(sparse::is_sparse_ternary_payload(bytes));
  // 8 + (16 layer header + 4*4 idx + 1 sign byte)
  EXPECT_EQ(bytes.size(), 8u + 16u + 16u + 1u);
  const auto decoded = sparse::decode_sparse_ternary(bytes);
  ASSERT_EQ(decoded.layers.size(), 1u);
  EXPECT_EQ(decoded.layers[0].idx, chunk.idx);
  EXPECT_EQ(decoded.layers[0].val, chunk.val);
}

TEST(SparseTernary, RejectsNonTernaryValues) {
  sparse::SparseUpdate update;
  sparse::LayerChunk chunk;
  chunk.layer = 0;
  chunk.dense_size = 4;
  chunk.idx = {0, 1};
  chunk.val = {0.5f, -0.3f};  // two distinct magnitudes
  update.layers.push_back(chunk);
  EXPECT_THROW(sparse::encode_sparse_ternary(update), std::invalid_argument);
}

TEST(SparseTernary, QuantizeChunkProducesValidInput) {
  util::Rng rng(20);
  sparse::LayerChunk chunk;
  chunk.layer = 0;
  chunk.dense_size = 64;
  for (std::uint32_t i = 0; i < 32; ++i) {
    chunk.idx.push_back(2 * i);
    chunk.val.push_back(rng.normal(0, 1));
  }
  const auto q = sparse::ternary_quantize_chunk(chunk, rng);
  EXPECT_LE(q.nnz(), chunk.nnz());
  sparse::SparseUpdate update;
  update.layers.push_back(q);
  EXPECT_NO_THROW((void)sparse::encode_sparse_ternary(update));
}

// ------------------------------------------------- extension algorithms

core::GradViews views_of(const std::vector<std::vector<float>>& grads) {
  core::GradViews v;
  for (const auto& g : grads) v.emplace_back(g.data(), g.size());
  return v;
}

TEST(TernGradAsync, WirePayloadMatchesReturnedUpdate) {
  core::TernGradAsync alg({64}, 21);
  const auto grads = random_values(64, 22);
  const auto update = alg.step(views_of({grads}), 0.1f, 0);
  const auto bytes = alg.encode_update(update);
  ASSERT_TRUE(sparse::is_ternary_payload(bytes));
  const auto wire = sparse::decode_ternary(bytes);
  const auto wire_dense = sparse::ternary_dequantize(wire.layers[0]);
  const auto returned = sparse::densify(update.layers[0]);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_FLOAT_EQ(wire_dense[i], returned[i]) << i;
}

TEST(TernGradAsync, PayloadIsSmall) {
  core::TernGradAsync alg({4096}, 23);
  const auto grads = random_values(4096, 24);
  const auto update = alg.step(views_of({grads}), 0.1f, 0);
  const auto bytes = alg.encode_update(update);
  EXPECT_LT(bytes.size(), 4096 * 4 / 10);  // far below dense float payload
}

TEST(RandomDroppingAlg, KeepsConfiguredFraction) {
  core::CompressionConfig compression;
  compression.ratio_percent = 10.0;
  core::RandomDropping alg({20000}, compression, 25);
  const auto grads = random_values(20000, 26);
  const auto update = alg.step(views_of({grads}), 1.0f, 0);
  EXPECT_NEAR(update.density(), 0.1, 0.01);
  EXPECT_EQ(alg.state_bytes(), 0u);
}

TEST(DgsTernaryAlg, SendsTernaryValuesAndKeepsVelocity) {
  core::CompressionConfig compression;
  compression.ratio_percent = 25.0;
  core::DgsTernary alg({64}, compression, 0.7f, 27);
  const auto grads = random_values(64, 28);
  const auto update = alg.step(views_of({grads}), 0.5f, 0);
  // All sent values share one magnitude per layer.
  if (!update.layers[0].val.empty()) {
    const float s = std::fabs(update.layers[0].val[0]);
    for (float v : update.layers[0].val) EXPECT_FLOAT_EQ(std::fabs(v), s);
  }
  const auto bytes = alg.encode_update(update);
  EXPECT_TRUE(sparse::is_sparse_ternary_payload(bytes));
  EXPECT_EQ(alg.state_bytes(), 64 * sizeof(float));
}

TEST(ExtensionMethods, TrainEndToEnd) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(31);
  dspec.num_train = 512;
  dspec.num_test = 256;
  const auto data = data::make_synthetic(dspec);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {32},
                                       data.train->num_classes());
  for (core::Method method : {core::Method::kTernGrad, core::Method::kRandomDrop,
                              core::Method::kDgsTernary}) {
    core::TrainConfig config;
    config.method = method;
    config.num_workers = 2;
    config.batch_size = 16;
    config.epochs = 4;
    config.lr = 0.02;
    config.momentum = 0.7;
    config.compression.ratio_percent = 10.0;
    config.seed = 33;
    const auto result =
        core::SimEngine(spec, data.train, data.test, config).run();
    EXPECT_GT(result.final_test_accuracy, 0.5)
        << core::method_name(method) << " failed to learn";
    EXPECT_GT(result.bytes.upward_bytes, 0u);
  }
}

TEST(ExtensionMethods, TernGradMovesFewBytesUpward) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(37);
  dspec.num_train = 256;
  dspec.num_test = 128;
  const auto data = data::make_synthetic(dspec);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {32},
                                       data.train->num_classes());
  core::TrainConfig config;
  config.num_workers = 2;
  config.batch_size = 16;
  config.epochs = 2;
  config.lr = 0.02;
  config.seed = 39;

  config.method = core::Method::kASGD;
  const auto dense = core::SimEngine(spec, data.train, data.test, config).run();
  config.method = core::Method::kTernGrad;
  const auto tern = core::SimEngine(spec, data.train, data.test, config).run();
  ASSERT_EQ(dense.bytes.upward_messages, tern.bytes.upward_messages);
  // ~2 bits vs 32 bits per element upward.
  EXPECT_LT(tern.bytes.upward_bytes, dense.bytes.upward_bytes / 8);
}

// ------------------------------------------------- NaN / ±0 policy (§14)

TEST(NanPolicy, TernaryShipsNonFiniteAtFullScale) {
  // The select.h policy: a poisoned gradient is surfaced, never silently
  // dropped; the scale is computed over finite magnitudes only.
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> v{1.0f, std::nanf(""), -inf, 0.0f, -0.5f};
  util::Rng rng(21);
  const auto q = sparse::ternary_quantize(0, v, rng);
  EXPECT_FLOAT_EQ(q.scale, 1.0f);  // NaN/inf do not poison the scale
  const auto d = sparse::ternary_dequantize(q);
  EXPECT_EQ(d[1], q.scale);   // NaN (positive sign bit) ships at +scale
  EXPECT_EQ(d[2], -q.scale);  // -inf keeps its sign
  EXPECT_EQ(d[3], 0.0f);      // exact zero never ships
}

TEST(NanPolicy, TernaryChunkShipsNonFiniteAtFullScale) {
  const float inf = std::numeric_limits<float>::infinity();
  sparse::LayerChunk c;
  c.layer = 0;
  c.dense_size = 8;
  c.idx = {0, 3, 5};
  c.val = {2.0f, std::nanf(""), -inf};
  util::Rng rng(22);
  const auto q = sparse::ternary_quantize_chunk(c, rng);
  for (std::size_t i = 0; i < q.nnz(); ++i) {
    if (q.idx[i] == 3) EXPECT_EQ(q.val[i], 2.0f);
    if (q.idx[i] == 5) EXPECT_EQ(q.val[i], -2.0f);
  }
  // The non-finite entries are always kept.
  EXPECT_NE(std::find(q.idx.begin(), q.idx.end(), 3u), q.idx.end());
  EXPECT_NE(std::find(q.idx.begin(), q.idx.end(), 5u), q.idx.end());
}

TEST(NanPolicy, QsgdSaturatesNonFiniteToTopLevel) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> v{3.0f, std::nanf(""), -inf, 4.0f};
  util::Rng rng(23);
  const auto q = sparse::qsgd_quantize(0, v, rng);
  EXPECT_FLOAT_EQ(q.norm, 5.0f);  // sqrt(9 + 16): finite entries only
  const auto d = sparse::qsgd_dequantize(q);
  EXPECT_EQ(d[1], q.norm);   // top level, positive sign bit
  EXPECT_EQ(d[2], -q.norm);  // top level, negative
}

TEST(NanPolicy, RandomDropAlwaysKeepsNaN) {
  // Even at 1% keep probability the NaN coordinate must always survive,
  // unscaled (NaN / p is still NaN but the policy is to not touch it).
  std::vector<float> v(100, 1.0f);
  v[42] = std::nanf("");
  v[7] = 0.0f;  // exact zero never ships
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(100 + seed);
    const auto chunk = sparse::random_drop(0, v, 0.01, rng);
    const auto it = std::find(chunk.idx.begin(), chunk.idx.end(), 42u);
    ASSERT_NE(it, chunk.idx.end()) << "seed " << seed;
    EXPECT_TRUE(std::isnan(
        chunk.val[static_cast<std::size_t>(it - chunk.idx.begin())]));
    EXPECT_EQ(std::find(chunk.idx.begin(), chunk.idx.end(), 7u),
              chunk.idx.end());
  }
}

TEST(MethodParse, ExtensionNames) {
  EXPECT_EQ(core::parse_method("terngrad"), core::Method::kTernGrad);
  EXPECT_EQ(core::parse_method("rdrop"), core::Method::kRandomDrop);
  EXPECT_EQ(core::parse_method("dgs+tern"), core::Method::kDgsTernary);
  EXPECT_STREQ(core::method_traits(core::Method::kDgsTernary).momentum,
               "SAMomentum");
}

}  // namespace
