// Concurrency tests: the sharded parameter server under real concurrent
// pushes, the ThreadEngine server pool, and transport shutdown draining.
// These are the tests the TSan preset (scripts/run_tsan.sh) is aimed at.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "comm/transport.h"
#include "core/server.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace {

using namespace dgs;
using core::Method;
using dgs::comm::Message;
using dgs::comm::MessageKind;
using dgs::sparse::LayerChunk;
using dgs::sparse::SparseUpdate;

Message make_push(int worker, const SparseUpdate& update) {
  Message m;
  m.kind = MessageKind::kGradientPush;
  m.worker_id = worker;
  m.payload = dgs::sparse::encode(update);
  return m;
}

void apply_reply_flat(const Message& reply, std::vector<float>& theta,
                      const std::vector<std::size_t>& sizes) {
  std::vector<std::size_t> offsets;
  std::size_t at = 0;
  for (std::size_t s : sizes) {
    offsets.push_back(at);
    at += s;
  }
  if (dgs::sparse::is_sparse_payload(reply.payload)) {
    const auto g = dgs::sparse::decode(reply.payload);
    for (const auto& c : g.layers)
      for (std::size_t i = 0; i < c.idx.size(); ++i)
        theta[offsets[c.layer] + c.idx[i]] += c.val[i];
  } else {
    const auto g = dgs::sparse::decode_dense(reply.payload);
    for (const auto& l : g.layers)
      for (std::size_t i = 0; i < l.values.size(); ++i)
        theta[offsets[l.layer] + i] += l.values[i];
  }
}

// ---- server under concurrent pushes ----------------------------------------

TEST(ConcurrentServer, Eq5PerWorkerIdentityUnderConcurrentPushes) {
  // W threads hammer a sharded server concurrently. The point-in-time global
  // Eq. 5 identity cannot hold while other workers' pushes interleave, but
  // the per-worker form must: after every reply, theta_k == theta0 + v_k
  // (the reply G = M - v_k and v += G happen atomically per shard, and v_k
  // is only ever touched by worker k's single in-flight push).
  constexpr std::size_t kWorkers = 4;
  constexpr int kIters = 200;
  const std::vector<std::size_t> sizes{32, 7, 16, 9};
  std::vector<float> theta0(64);
  util::Rng init_rng(11);
  for (auto& v : theta0) v = init_rng.normal(0, 1);

  core::ParameterServer server(sizes, theta0,
                               {.num_workers = kWorkers, .num_shards = 3});

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t k = 0; k < kWorkers; ++k) {
    threads.emplace_back([&, k] {
      util::Rng rng(100 + k);
      std::vector<float> theta = theta0;
      for (int iter = 0; iter < kIters; ++iter) {
        SparseUpdate u;
        for (std::uint32_t j = 0; j < sizes.size(); ++j) {
          LayerChunk c;
          c.layer = j;
          c.dense_size = static_cast<std::uint32_t>(sizes[j]);
          c.idx = {static_cast<std::uint32_t>(rng.below(sizes[j]))};
          c.val = {rng.normal(0, 0.1f)};
          u.layers.push_back(std::move(c));
        }
        const Message reply =
            server.handle_push(make_push(static_cast<int>(k), u));
        apply_reply_flat(reply, theta, sizes);
        // theta0 + v_k must equal this worker's model (up to the rounding
        // difference between incremental accumulation and one-shot add).
        const auto vk = server.sent_accumulator(k);
        std::size_t at = 0;
        for (const auto& layer : vk)
          for (float v : layer) {
            if (std::abs(theta[at] - (theta0[at] + v)) > 1e-5f)
              failures.fetch_add(1);
            ++at;
          }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescent: every worker syncs with an empty push; afterwards its model
  // equals the global model exactly (full Eq. 5).
  const auto global = server.global_model_flat();
  for (std::size_t k = 0; k < kWorkers; ++k) {
    std::vector<float> theta = theta0;
    const auto vk_before = server.sent_accumulator(k);
    std::size_t at = 0;
    for (const auto& layer : vk_before)
      for (float v : layer) theta[at++] += v;
    const Message reply =
        server.handle_push(make_push(static_cast<int>(k), SparseUpdate{}));
    apply_reply_flat(reply, theta, sizes);
    const auto now_global = server.global_model_flat();
    for (std::size_t i = 0; i < theta.size(); ++i)
      ASSERT_NEAR(theta[i], now_global[i], 1e-5f) << "worker " << k;
  }
  // Empty pushes do not change the global model.
  EXPECT_EQ(global, server.global_model_flat());
}

TEST(ConcurrentServer, StepCountAndStalenessBookkeepingAreExact) {
  constexpr std::size_t kWorkers = 8;
  constexpr int kIters = 100;
  core::ParameterServer server({64}, std::vector<float>(64, 0.0f),
                               {.num_workers = kWorkers, .num_shards = 1});
  std::atomic<std::uint64_t> staleness_sum{0};
  std::vector<std::thread> threads;
  for (std::size_t k = 0; k < kWorkers; ++k)
    threads.emplace_back([&, k] {
      util::Rng rng(k);
      for (int i = 0; i < kIters; ++i) {
        SparseUpdate u;
        LayerChunk c;
        c.layer = 0;
        c.dense_size = 64;
        c.idx = {static_cast<std::uint32_t>(rng.below(64))};
        c.val = {0.01f};
        u.layers.push_back(std::move(c));
        std::uint64_t staleness = 0;
        const Message reply = server.handle_push(
            make_push(static_cast<int>(k), u), &staleness);
        // server_step is this push's unique post-increment timestamp.
        EXPECT_GE(reply.server_step, 1u);
        EXPECT_LE(reply.server_step, kWorkers * kIters);
        staleness_sum.fetch_add(staleness);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(server.step(), kWorkers * kIters);
  // Staleness totals: each push's staleness counts the other workers'
  // pushes admitted since its own previous one; summed over all pushes this
  // is bounded by pushes * (workers - 1) interleavings on average. A weak
  // sanity bound suffices — the exact value is schedule-dependent.
  EXPECT_LE(staleness_sum.load(),
            static_cast<std::uint64_t>(kWorkers) * kIters * kWorkers);
}

// ---- transport shutdown -----------------------------------------------------

TEST(ThreadTransport, ShutdownDeliversShutdownMessageThenCloses) {
  comm::ThreadTransport transport(3);
  // Workers blocked waiting for replies must wake with an explicit
  // kShutdown message, then see closed channels forever after.
  std::vector<std::thread> workers;
  std::atomic<int> got_shutdown{0};
  for (std::size_t k = 0; k < 3; ++k)
    workers.emplace_back([&, k] {
      const auto reply = transport.receive_reply(k);
      if (reply && reply->kind == MessageKind::kShutdown)
        got_shutdown.fetch_add(1);
    });
  transport.shutdown();
  for (auto& t : workers) t.join();
  EXPECT_EQ(got_shutdown.load(), 3);

  // After shutdown: pushes are refused, the server inbox drains to nullopt,
  // and a second shutdown is a harmless no-op.
  Message push;
  push.kind = MessageKind::kGradientPush;
  EXPECT_FALSE(transport.send_push(std::move(push)));
  EXPECT_FALSE(transport.receive_push().has_value());
  transport.shutdown();
  EXPECT_FALSE(transport.receive_reply(0).has_value());
}

TEST(ThreadTransport, AccountsOnlyAcknowledgedMessages) {
  comm::ThreadTransport transport(1);
  Message push;
  push.kind = MessageKind::kGradientPush;
  push.payload.resize(100);
  const std::size_t wire = push.wire_size();
  ASSERT_TRUE(transport.send_push(std::move(push)));
  transport.shutdown();
  Message late;
  late.kind = MessageKind::kGradientPush;
  late.payload.resize(100);
  EXPECT_FALSE(transport.send_push(std::move(late)));  // not counted
  const auto bytes = transport.bytes();
  EXPECT_EQ(bytes.upward_messages, 1u);
  EXPECT_EQ(bytes.upward_bytes, wire);
}

TEST(ThreadTransport, ByteTotalsExactAndPoolSizeInvariant) {
  // The ByteCounter must aggregate exactly under concurrency: W producers x
  // kIters fixed-size pushes, drained by a consumer pool and answered with
  // fixed-size replies, must account precisely W * kIters messages in each
  // direction — for any pool size. (Shutdown's kShutdown broadcasts travel
  // outside send_reply and must NOT be counted.)
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kIters = 50;
  constexpr std::size_t kPushPayload = 100;
  constexpr std::size_t kReplyPayload = 40;

  std::vector<comm::ByteCounter> totals;
  for (const std::size_t pool_size : {1u, 4u}) {
    comm::ThreadTransport transport(kWorkers);

    std::vector<std::thread> consumers;
    for (std::size_t t = 0; t < pool_size; ++t)
      consumers.emplace_back([&] {
        while (auto push = transport.receive_push()) {
          Message reply;
          reply.kind = MessageKind::kModelDiff;
          reply.worker_id = push->worker_id;
          reply.payload.resize(kReplyPayload);
          (void)transport.send_reply(
              static_cast<std::size_t>(push->worker_id), std::move(reply));
        }
      });

    std::vector<std::thread> producers;
    for (std::size_t k = 0; k < kWorkers; ++k)
      producers.emplace_back([&, k] {
        for (std::size_t i = 0; i < kIters; ++i) {
          Message push;
          push.kind = MessageKind::kGradientPush;
          push.worker_id = static_cast<std::int32_t>(k);
          push.payload.resize(kPushPayload);
          ASSERT_TRUE(transport.send_push(std::move(push)));
          const auto reply = transport.receive_reply(k);
          ASSERT_TRUE(reply.has_value());
          ASSERT_EQ(reply->kind, MessageKind::kModelDiff);
        }
      });
    for (auto& t : producers) t.join();
    transport.shutdown();
    for (auto& t : consumers) t.join();
    totals.push_back(transport.bytes());
  }

  const std::size_t pushes = kWorkers * kIters;
  const std::size_t push_wire = kPushPayload + comm::kMessageHeaderBytes;
  const std::size_t reply_wire = kReplyPayload + comm::kMessageHeaderBytes;
  for (const comm::ByteCounter& bytes : totals) {
    EXPECT_EQ(bytes.upward_messages, pushes);
    EXPECT_EQ(bytes.upward_bytes, pushes * push_wire);
    EXPECT_EQ(bytes.downward_messages, pushes);
    EXPECT_EQ(bytes.downward_bytes, pushes * reply_wire);
  }
}

// ---- ThreadEngine end-to-end ------------------------------------------------

struct EngineFixture {
  data::SyntheticDataset data;
  nn::ModelSpec spec;

  EngineFixture()
      : data([] {
          data::SyntheticSpec s = data::SyntheticSpec::synth_cifar(71);
          s.num_train = 384;
          s.num_test = 192;
          return data::make_synthetic(s);
        }()),
        spec(nn::ModelSpec::mlp(data.train->feature_dim(), {24},
                                data.train->num_classes())) {}

  core::TrainConfig config(Method method, std::size_t workers,
                           std::size_t server_threads,
                           std::size_t shards) const {
    core::TrainConfig c;
    c.method = method;
    c.num_workers = workers;
    c.batch_size = 16;
    c.epochs = 3;
    c.lr = 0.02;
    c.seed = 91;
    c.record_curve = false;
    c.server_threads = server_threads;
    c.server_shards = shards;
    return c;
  }
};

TEST(ThreadEngineConcurrency, ServerPoolMatchesSingleThreadWithinTolerance) {
  // The async schedule is inherently nondeterministic, so outcomes cannot be
  // bit-equal across pool sizes — but the learning problem is easy enough
  // that every configuration must land in the same quality band, process
  // the same sample budget, and keep the accounting invariants.
  const EngineFixture fx;
  const std::uint64_t budget = 3ull * fx.data.train->size();

  std::vector<core::RunResult> results;
  for (const std::size_t server_threads : {1u, 2u, 4u}) {
    const auto config = fx.config(Method::kDGS, 4, server_threads, 4);
    auto result =
        core::ThreadEngine(fx.spec, fx.data.train, fx.data.test, config).run();
    // Budget respected: every claimed batch was computed; overshoot is at
    // most one in-flight batch per worker.
    EXPECT_GE(result.samples_processed, budget);
    EXPECT_LE(result.samples_processed, budget + 4 * 16);
    // Every server step recorded exactly one staleness sample, and the
    // reply stream matches the push stream.
    EXPECT_EQ(result.staleness.count, result.server_steps);
    EXPECT_EQ(result.bytes.upward_messages, result.server_steps);
    EXPECT_GT(result.final_test_accuracy, 0.0);
    results.push_back(std::move(result));
  }

  for (std::size_t i = 1; i < results.size(); ++i) {
    // Same quality band as the single-thread pool.
    EXPECT_NEAR(results[i].final_test_accuracy,
                results[0].final_test_accuracy, 0.15);
    // Same traffic volume within 10% (message sizes vary with the model
    // state, counts with shutdown timing).
    const double bytes_base =
        static_cast<double>(results[0].bytes.upward_bytes);
    const double bytes_i = static_cast<double>(results[i].bytes.upward_bytes);
    EXPECT_NEAR(bytes_i / bytes_base, 1.0, 0.1);
  }
}

TEST(ThreadEngineConcurrency, ShutdownDrainsCleanlyAcrossMethods) {
  // The budget-exhaustion broadcast must terminate every thread without
  // deadlock for both sparse (DGS) and dense (ASGD) traffic, with and
  // without a bounded inbox. Completing at all is the assertion; the test
  // would hang (and time out) on a drain bug.
  const EngineFixture fx;
  for (const Method method : {Method::kDGS, Method::kASGD}) {
    for (const std::size_t capacity : {0u, 2u}) {
      auto config = fx.config(method, 3, 2, 2);
      config.server_inbox_capacity = capacity;
      const auto result =
          core::ThreadEngine(fx.spec, fx.data.train, fx.data.test, config)
              .run();
      EXPECT_GT(result.server_steps, 0u);
      EXPECT_GT(result.final_test_accuracy, 0.0);
    }
  }
}

}  // namespace
