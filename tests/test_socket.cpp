// Socket transport unit tests: framing encode/decode and the incremental
// FrameDecoder, the epoll EventLoop, absolute-deadline Channel waits, and
// in-process client/server exchanges over real UDS and TCP sockets. All
// tests here are fork-free and single-binary (label `fast`), so they run
// under ASan/TSan; the forked-process chaos coverage lives in test_chaos.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "comm/channel.h"
#include "comm/event_loop.h"
#include "comm/framing.h"
#include "comm/message.h"
#include "comm/socket_transport.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace {

using namespace dgs;
using namespace std::chrono_literals;

comm::Message sample_message(comm::MessageKind kind, std::size_t payload_len,
                             util::Rng& rng) {
  comm::Message msg;
  msg.kind = kind;
  msg.worker_id = static_cast<std::int32_t>(rng.below(64));
  msg.worker_step = rng.below(1u << 20);
  msg.server_step = rng.below(1u << 20);
  msg.seq = rng.below(1u << 20);
  msg.attempt = static_cast<std::uint32_t>(rng.below(16));
  msg.epoch = static_cast<std::uint32_t>(rng.below(100));
  msg.loss = static_cast<float>(rng.normal(0, 1));
  msg.density = static_cast<float>(rng.below(100)) / 100.0F;
  msg.payload.resize(payload_len);
  for (auto& b : msg.payload) b = static_cast<std::uint8_t>(rng.below(256));
  return msg;
}

std::vector<std::uint8_t> frame_of(const comm::Message& msg,
                                   std::uint64_t send_ns = 0) {
  std::vector<std::uint8_t> wire(comm::framed_size(msg));
  comm::encode_frame_header(msg, send_ns, wire.data());
  if (!msg.payload.empty()) {
    std::memcpy(wire.data() + comm::kFrameHeaderBytes, msg.payload.data(),
                msg.payload.size());
  }
  return wire;
}

void expect_equal(const comm::Message& got, const comm::Message& want) {
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.worker_id, want.worker_id);
  EXPECT_EQ(got.worker_step, want.worker_step);
  EXPECT_EQ(got.server_step, want.server_step);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.attempt, want.attempt);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.loss, want.loss);
  EXPECT_EQ(got.density, want.density);
  EXPECT_EQ(got.payload, want.payload);
}

// ------------------------------------------------------------------ framing

TEST(Framing, HeaderSizeMatchesModeledCharge) {
  EXPECT_EQ(comm::kFrameHeaderBytes, comm::kMessageHeaderBytes);
  comm::Message msg;
  msg.payload.resize(123);
  EXPECT_EQ(comm::framed_size(msg), msg.wire_size());
}

TEST(Framing, RoundTripsEveryKindAndFieldExactly) {
  util::Rng rng(0x501);
  const comm::MessageKind kinds[] = {
      comm::MessageKind::kGradientPush, comm::MessageKind::kModelDiff,
      comm::MessageKind::kShutdown, comm::MessageKind::kRejoinRequest,
      comm::MessageKind::kFullModel};
  const std::size_t lens[] = {0, 1, 63, 64, 65, 1000, 65536};
  for (const auto kind : kinds)
    for (const auto len : lens) {
      const auto msg = sample_message(kind, len, rng);
      const auto wire = frame_of(msg, /*send_ns=*/777);
      comm::FrameDecoder decoder;
      decoder.feed(wire);
      comm::Message got;
      std::uint64_t send_ns = 0;
      ASSERT_TRUE(decoder.next(got, &send_ns));
      expect_equal(got, msg);
      EXPECT_EQ(send_ns, 777u);
      EXPECT_FALSE(decoder.mid_frame());
      EXPECT_FALSE(decoder.next(got));
    }
}

// Partial-read reassembly must be byte-identical to a whole-message decode
// no matter where the kernel splits the stream.
TEST(Framing, EverySplitPointReassemblesIdentically) {
  util::Rng rng(0x502);
  const auto msg = sample_message(comm::MessageKind::kGradientPush, 96, rng);
  const auto wire = frame_of(msg);
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    comm::FrameDecoder decoder;
    decoder.feed(std::span(wire.data(), split));
    decoder.feed(std::span(wire.data() + split, wire.size() - split));
    comm::Message got;
    ASSERT_TRUE(decoder.next(got)) << "split at " << split;
    expect_equal(got, msg);
  }
}

TEST(Framing, RandomChunkingOfManyFramesPreservesOrderAndBytes) {
  util::Rng rng(0x503);
  std::vector<comm::Message> sent;
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 32; ++i) {
    sent.push_back(sample_message(
        static_cast<comm::MessageKind>(rng.below(5)), rng.below(512), rng));
    const auto one = frame_of(sent.back());
    wire.insert(wire.end(), one.begin(), one.end());
  }
  for (int trial = 0; trial < 50; ++trial) {
    comm::FrameDecoder decoder;
    std::size_t off = 0;
    while (off < wire.size()) {
      const std::size_t n =
          std::min(wire.size() - off, 1 + rng.below(97));
      decoder.feed(std::span(wire.data() + off, n));
      off += n;
    }
    comm::Message got;
    for (const auto& want : sent) {
      ASSERT_TRUE(decoder.next(got));
      expect_equal(got, want);
    }
    EXPECT_FALSE(decoder.next(got));
  }
}

TEST(Framing, ByteByByteFeedIsExact) {
  util::Rng rng(0x504);
  const auto msg = sample_message(comm::MessageKind::kModelDiff, 257, rng);
  const auto wire = frame_of(msg);
  comm::FrameDecoder decoder;
  for (const std::uint8_t b : wire) decoder.feed(std::span(&b, 1));
  comm::Message got;
  ASSERT_TRUE(decoder.next(got));
  expect_equal(got, msg);
}

TEST(Framing, ZeroCopyWritableCommitPathMatchesFeed) {
  util::Rng rng(0x505);
  const auto msg = sample_message(comm::MessageKind::kGradientPush, 300, rng);
  const auto wire = frame_of(msg);
  comm::FrameDecoder decoder;
  std::size_t off = 0;
  while (off < wire.size()) {
    auto gap = decoder.writable();
    ASSERT_FALSE(gap.empty());
    // Simulate short reads: never fill the whole gap in one go.
    const std::size_t n =
        std::min({gap.size(), wire.size() - off, 1 + rng.below(40)});
    std::memcpy(gap.data(), wire.data() + off, n);
    decoder.commit(n);
    off += n;
  }
  comm::Message got;
  ASSERT_TRUE(decoder.next(got));
  expect_equal(got, msg);
}

TEST(Framing, BadMagicVersionKindAndHugeLengthAllThrow) {
  util::Rng rng(0x506);
  const auto msg = sample_message(comm::MessageKind::kGradientPush, 8, rng);
  {
    auto wire = frame_of(msg);
    wire[0] ^= 0xFF;  // magic
    comm::FrameDecoder decoder;
    EXPECT_THROW(decoder.feed(wire), comm::FramingError);
  }
  {
    auto wire = frame_of(msg);
    wire[4] = 99;  // version
    comm::FrameDecoder decoder;
    EXPECT_THROW(decoder.feed(wire), comm::FramingError);
  }
  {
    auto wire = frame_of(msg);
    wire[5] = 200;  // unknown kind
    comm::FrameDecoder decoder;
    EXPECT_THROW(decoder.feed(wire), comm::FramingError);
  }
  {
    // A bit-flipped length must be rejected before any allocation, not
    // turned into a multi-gigabyte resize.
    auto wire = frame_of(msg);
    const std::uint32_t huge = 0xFFFFFFFFu;
    std::memcpy(wire.data() + 60, &huge, sizeof(huge));
    comm::FrameDecoder decoder;
    EXPECT_THROW(decoder.feed(wire), comm::FramingError);
  }
}

TEST(Framing, BitFlipSweepNeverCrashesDecoder) {
  util::Rng rng(0x507);
  const auto msg = sample_message(comm::MessageKind::kGradientPush, 40, rng);
  const auto wire = frame_of(msg);
  for (std::size_t byte = 0; byte < comm::kFrameHeaderBytes; ++byte)
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = wire;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      comm::FrameDecoder decoder;
      try {
        decoder.feed(mutated);
        comm::Message got;
        while (decoder.next(got)) {
        }
      } catch (const comm::FramingError&) {
        // Rejection is fine; crashing or hanging is not.
      }
    }
}

TEST(Framing, TruncatedFrameStaysPendingNotCorrupt) {
  util::Rng rng(0x508);
  const auto msg = sample_message(comm::MessageKind::kGradientPush, 64, rng);
  const auto wire = frame_of(msg);
  comm::FrameDecoder decoder;
  decoder.feed(std::span(wire.data(), wire.size() - 1));
  comm::Message got;
  EXPECT_FALSE(decoder.next(got));
  EXPECT_TRUE(decoder.mid_frame());
  EXPECT_EQ(decoder.partial_bytes(), wire.size() - 1);
  // The missing byte arrives: the message completes, nothing was lost.
  decoder.feed(std::span(wire.data() + wire.size() - 1, 1));
  ASSERT_TRUE(decoder.next(got));
  expect_equal(got, msg);
}

// ---------------------------------------------------------------- EventLoop

TEST(EventLoop, RunsPostedTasksOnLoopThread) {
  comm::EventLoop loop;
  std::thread t([&] { loop.run(); });
  std::atomic<int> ran{0};
  comm::Channel<int> done;
  for (int i = 0; i < 10; ++i)
    loop.post([&, i] {
      ran.fetch_add(1);
      if (i == 9) (void)done.send(1);
    });
  int sink = 0;
  ASSERT_EQ(done.receive_until(sink, std::chrono::steady_clock::now() + 5s),
            comm::ChannelStatus::kOk);
  EXPECT_EQ(ran.load(), 10);
  loop.stop();
  t.join();
}

TEST(EventLoop, DispatchesPipeReadability) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_CLOEXEC | O_NONBLOCK), 0);
  comm::EventLoop loop;
  comm::Channel<std::string> got;
  loop.add_fd(fds[0], EPOLLIN, [&](std::uint32_t) {
    char buf[64];
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) (void)got.send(std::string(buf, static_cast<std::size_t>(n)));
  });
  std::thread t([&] { loop.run(); });
  ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  std::string msg;
  ASSERT_EQ(got.receive_until(msg, std::chrono::steady_clock::now() + 5s),
            comm::ChannelStatus::kOk);
  EXPECT_EQ(msg, "ping");
  loop.stop();
  t.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, RemoveFdDuringDispatchIsSafe) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_CLOEXEC | O_NONBLOCK), 0);
  comm::EventLoop loop;
  comm::Channel<int> done;
  loop.add_fd(fds[0], EPOLLIN, [&](std::uint32_t) {
    loop.remove_fd(fds[0]);  // handler removes itself mid-dispatch
    (void)done.send(1);
  });
  std::thread t([&] { loop.run(); });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  int sink = 0;
  ASSERT_EQ(done.receive_until(sink, std::chrono::steady_clock::now() + 5s),
            comm::ChannelStatus::kOk);
  loop.stop();
  t.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------- Channel absolute deadlines

// The retransmit path depends on receive_for being a real bound: waiting
// toward an absolute steady_clock deadline that spurious wakeups cannot
// extend, and that does not busy-wait.
TEST(ChannelDeadline, TimedReceiveHonorsDeadline) {
  comm::Channel<int> ch;
  int out = 0;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.receive_for(out, 30ms), comm::ChannelStatus::kTimedOut);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_GE(elapsed, 29ms);  // not an early return
  EXPECT_LT(elapsed, 5s);    // not stuck
}

TEST(ChannelDeadline, TimedReceiveReturnsEarlyWhenValueArrives) {
  comm::Channel<int> ch;
  std::thread t([&] {
    std::this_thread::sleep_for(10ms);
    (void)ch.send(42);
  });
  int out = 0;
  EXPECT_EQ(ch.receive_for(out, 5000ms), comm::ChannelStatus::kOk);
  EXPECT_EQ(out, 42);
  t.join();
}

TEST(ChannelDeadline, TimedSendHonorsDeadlineWhenFull) {
  comm::Channel<int> ch(/*capacity=*/1);
  ASSERT_TRUE(ch.send(1));
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.send_for(2, 30ms), comm::ChannelStatus::kTimedOut);
  EXPECT_GE(std::chrono::steady_clock::now() - begin, 29ms);
}

TEST(ChannelDeadline, CloseWakesTimedReceive) {
  comm::Channel<int> ch;
  std::thread t([&] {
    std::this_thread::sleep_for(10ms);
    ch.close();
  });
  int out = 0;
  EXPECT_EQ(ch.receive_for(out, 5000ms), comm::ChannelStatus::kClosed);
  t.join();
}

// ------------------------------------------------- sockets (in-process)

std::string test_uds_path(const char* tag) {
  return "/tmp/dgs_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

comm::Message make_push(std::int32_t worker, std::uint64_t seq,
                        std::size_t payload_len, util::Rng& rng) {
  auto msg = sample_message(comm::MessageKind::kGradientPush, payload_len, rng);
  msg.worker_id = worker;
  msg.seq = seq;
  return msg;
}

class SocketExchange : public ::testing::TestWithParam<bool> {};

// One worker, in-process client thread: pushes flow up in order, replies
// flow back matched by seq, and both directions' byte counters equal the
// exact framed sizes.
TEST_P(SocketExchange, PushReplyRoundTripWithExactByteAccounting) {
  const bool tcp = GetParam();
  const auto address =
      tcp ? comm::SocketAddress::tcp("127.0.0.1", 0)
          : comm::SocketAddress::uds(test_uds_path("xchg"));
  obs::MetricsRegistry metrics;
  comm::SocketServerTransport server(address, 1, &metrics);
  server.start();

  util::Rng rng(0x600);
  std::vector<comm::Message> pushes;
  for (std::uint64_t s = 1; s <= 16; ++s)
    pushes.push_back(make_push(0, s, rng.below(2000), rng));

  std::size_t up_bytes = 0;
  for (const auto& p : pushes) up_bytes += comm::framed_size(p);

  std::thread client_thread([&] {
    comm::SocketClientTransport client(server.bound_address(), 0);
    for (const auto& p : pushes) {
      ASSERT_TRUE(client.send_push(p));
      comm::Message reply;
      ASSERT_TRUE(client.receive_reply(reply));
      EXPECT_EQ(reply.kind, comm::MessageKind::kModelDiff);
      EXPECT_EQ(reply.seq, p.seq);
    }
  });

  std::size_t down_bytes = 0;
  for (std::size_t i = 0; i < pushes.size(); ++i) {
    auto got = server.receive_push();
    ASSERT_TRUE(got.has_value());
    expect_equal(*got, pushes[i]);  // byte-identical across the socket
    comm::Message reply;
    reply.kind = comm::MessageKind::kModelDiff;
    reply.worker_id = 0;
    reply.seq = got->seq;
    reply.payload.assign(rng.below(500), std::uint8_t{7});
    down_bytes += comm::framed_size(reply);
    ASSERT_TRUE(server.send_reply(0, std::move(reply)));
  }
  client_thread.join();

  EXPECT_EQ(server.bytes().upward_bytes, up_bytes);
  EXPECT_EQ(server.bytes().downward_bytes, down_bytes);
  EXPECT_EQ(server.bytes().upward_messages, pushes.size());
  EXPECT_EQ(server.bytes().downward_messages, pushes.size());
  server.shutdown();
}

// Several clients at once: per-connection streams never interleave bytes,
// every push arrives intact, replies route to the right worker.
TEST_P(SocketExchange, ConcurrentClientsRouteCleanly) {
  const bool tcp = GetParam();
  const auto address =
      tcp ? comm::SocketAddress::tcp("127.0.0.1", 0)
          : comm::SocketAddress::uds(test_uds_path("multi"));
  comm::SocketServerTransport server(address, 4, nullptr);
  server.start();

  constexpr int kWorkers = 4;
  constexpr std::uint64_t kPushes = 8;
  std::vector<std::thread> clients;
  clients.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    clients.emplace_back([&, w] {
      util::Rng rng(0x700 + static_cast<std::uint64_t>(w));
      comm::SocketClientTransport client(server.bound_address(), w);
      for (std::uint64_t s = 1; s <= kPushes; ++s) {
        auto push = make_push(w, s, 128 + rng.below(512), rng);
        // Payload watermark: worker id in every byte.
        for (auto& b : push.payload) b = static_cast<std::uint8_t>(w);
        ASSERT_TRUE(client.send_push(push));
        comm::Message reply;
        ASSERT_TRUE(client.receive_reply(reply));
        ASSERT_EQ(reply.worker_id, w);  // no cross-worker routing
        ASSERT_EQ(reply.seq, s);
      }
    });
  }

  for (std::uint64_t served = 0; served < kWorkers * kPushes; ++served) {
    auto push = server.receive_push();
    ASSERT_TRUE(push.has_value());
    const auto w = push->worker_id;
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kWorkers);
    for (const auto b : push->payload)
      ASSERT_EQ(b, static_cast<std::uint8_t>(w));  // stream never interleaved
    comm::Message reply;
    reply.kind = comm::MessageKind::kModelDiff;
    reply.worker_id = w;
    reply.seq = push->seq;
    ASSERT_TRUE(server.send_reply(static_cast<std::size_t>(w),
                                  std::move(reply)));
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(server.bytes().upward_messages,
            static_cast<std::uint64_t>(kWorkers * kPushes));
  server.shutdown();
}

// A reply far larger than any socket buffer forces the partial-write /
// EPOLLOUT path on the server and split reads on the client; the payload
// must arrive byte-identical.
TEST_P(SocketExchange, MultiMegabyteReplySurvivesPartialWrites) {
  const bool tcp = GetParam();
  const auto address =
      tcp ? comm::SocketAddress::tcp("127.0.0.1", 0)
          : comm::SocketAddress::uds(test_uds_path("big"));
  comm::SocketServerTransport server(address, 1, nullptr);
  server.start();

  util::Rng rng(0x800);
  comm::Message big;
  big.kind = comm::MessageKind::kFullModel;
  big.worker_id = 0;
  big.seq = 1;
  big.payload.resize(8 << 20);  // 8 MiB >> any default socket buffer
  for (auto& b : big.payload) b = static_cast<std::uint8_t>(rng.below(256));
  const auto want = big.payload;

  std::thread client_thread([&] {
    comm::SocketClientTransport client(server.bound_address(), 0);
    comm::Message hello;
    hello.kind = comm::MessageKind::kRejoinRequest;
    ASSERT_TRUE(client.send_push(hello));
    // Dawdle so the server's write queue definitely backs up first.
    std::this_thread::sleep_for(50ms);
    comm::Message reply;
    ASSERT_TRUE(client.receive_reply(reply));
    EXPECT_EQ(reply.kind, comm::MessageKind::kFullModel);
    EXPECT_EQ(reply.payload, want);
  });

  auto hello = server.receive_push();
  ASSERT_TRUE(hello.has_value());
  ASSERT_TRUE(server.send_reply(0, std::move(big)));
  client_thread.join();
  server.shutdown();
}

// Timed reply receive: the deadline must hold against an idle server.
TEST(SocketClient, TimedReceiveHonorsDeadline) {
  const auto address = comm::SocketAddress::uds(test_uds_path("timeo"));
  comm::SocketServerTransport server(address, 1, nullptr);
  server.start();
  comm::SocketClientTransport client(server.bound_address(), 0);
  comm::Message out;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_EQ(client.receive_reply_for(out, 40ms),
            comm::ChannelStatus::kTimedOut);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_GE(elapsed, 39ms);
  EXPECT_LT(elapsed, 5s);
  server.shutdown();
}

// shutdown() must wake a client blocked in receive_reply (kShutdown frame
// or EOF — either ends the blocking call).
TEST(SocketServer, ShutdownUnblocksClient) {
  const auto address = comm::SocketAddress::uds(test_uds_path("shut"));
  comm::SocketServerTransport server(address, 1, nullptr);
  server.start();
  comm::Channel<int> done;
  std::thread client_thread([&] {
    comm::SocketClientTransport client(server.bound_address(), 0);
    comm::Message hello;
    hello.kind = comm::MessageKind::kRejoinRequest;
    ASSERT_TRUE(client.send_push(hello));
    comm::Message reply;
    while (client.receive_reply(reply)) {
      if (reply.kind == comm::MessageKind::kShutdown) break;
    }
    (void)done.send(1);
  });
  auto hello = server.receive_push();
  ASSERT_TRUE(hello.has_value());
  server.shutdown();
  int sink = 0;
  ASSERT_EQ(done.receive_until(sink, std::chrono::steady_clock::now() + 10s),
            comm::ChannelStatus::kOk);
  client_thread.join();
}

// A client that vanishes mid-stream (socket closed with a frame half
// written) must only cost its own connection: the server drops it and keeps
// serving others. This is the fork-free shadow of the kill -9 chaos test.
TEST(SocketServer, HalfWrittenFrameOnDisconnectOnlyDropsThatConnection) {
  const auto address = comm::SocketAddress::uds(test_uds_path("halffr"));
  comm::SocketServerTransport server(address, 2, nullptr);
  server.start();

  // Raw socket speaking just enough of the protocol to die mid-frame.
  util::Rng rng(0x900);
  auto doomed = make_push(0, 1, 4096, rng);
  const auto wire = frame_of(doomed);
  {
    comm::SocketClientTransport probe(server.bound_address(), 0);
    // First a full push so the connection is identified...
    ASSERT_TRUE(probe.send_push(doomed));
    auto got = server.receive_push();
    ASSERT_TRUE(got.has_value());
    // ...then the client object goes out of scope with nothing pending;
    // reopen raw below for the half-frame.
  }
  int raw = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(raw, 0);
  ::sockaddr_un sun{};
  sun.sun_family = AF_UNIX;
  std::strncpy(sun.sun_path, server.bound_address().path.c_str(),
               sizeof(sun.sun_path) - 1);
  ASSERT_EQ(::connect(raw, reinterpret_cast<::sockaddr*>(&sun), sizeof(sun)),
            0);
  // Half a frame, then gone.
  ASSERT_EQ(::write(raw, wire.data(), wire.size() / 2),
            static_cast<ssize_t>(wire.size() / 2));
  ::close(raw);

  // A healthy worker on another connection is unaffected.
  std::thread healthy([&] {
    util::Rng rng2(0x901);
    comm::SocketClientTransport client(server.bound_address(), 1);
    auto push = make_push(1, 1, 64, rng2);
    ASSERT_TRUE(client.send_push(push));
    comm::Message reply;
    ASSERT_TRUE(client.receive_reply(reply));
    ASSERT_EQ(reply.seq, 1u);
  });
  auto push = server.receive_push();
  ASSERT_TRUE(push.has_value());
  EXPECT_EQ(push->worker_id, 1);
  comm::Message reply;
  reply.kind = comm::MessageKind::kModelDiff;
  reply.worker_id = 1;
  reply.seq = push->seq;
  ASSERT_TRUE(server.send_reply(1, std::move(reply)));
  healthy.join();
  server.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Transports, SocketExchange, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("Tcp")
                                             : std::string("Uds");
                         });

// --------------------------------------------------- ProcessEngine runs

data::SyntheticDataset engine_data(std::uint64_t seed = 11) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(seed);
  dspec.num_train = 256;
  dspec.num_test = 128;
  return data::make_synthetic(dspec);
}

core::TrainConfig engine_config(std::size_t workers) {
  core::TrainConfig config;
  config.method = core::Method::kDGS;
  config.num_workers = workers;
  config.batch_size = 16;
  config.epochs = 2;
  config.lr = 0.05;
  config.seed = 71;
  config.record_curve = false;
  return config;
}

TEST(ProcessEngine, ThreadTransportRunsTheWireOnlyProtocol) {
  const auto data = engine_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = engine_config(2);
  config.transport = core::TransportKind::kThread;
  const auto r =
      core::ProcessEngine(spec, data.train, data.test, config).run();
  EXPECT_GE(r.samples_processed, 2ull * data.train->size());
  EXPECT_GT(r.bytes.upward_bytes, 0u);
  EXPECT_GT(r.bytes.downward_bytes, 0u);
  EXPECT_GT(r.final_test_accuracy, 0.22);  // chance is 0.1; tiny run, loose bar
  EXPECT_FALSE(r.final_model.empty());
}

TEST(ProcessEngine, UdsWorkersAreRealProcesses) {
  const auto data = engine_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = engine_config(2);
  config.transport = core::TransportKind::kUds;
  const auto r =
      core::ProcessEngine(spec, data.train, data.test, config).run();
  EXPECT_GE(r.samples_processed, 2ull * data.train->size());
  // Real wire traffic, measured (not modeled) at the server socket.
  EXPECT_GT(r.bytes.upward_bytes, 0u);
  EXPECT_GT(r.bytes.downward_bytes, 0u);
  EXPECT_GT(r.final_test_accuracy, 0.22);  // chance is 0.1; tiny run, loose bar
}

TEST(ProcessEngine, TcpWorkersAreRealProcesses) {
  const auto data = engine_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = engine_config(2);
  config.transport = core::TransportKind::kTcp;
  const auto r =
      core::ProcessEngine(spec, data.train, data.test, config).run();
  EXPECT_GE(r.samples_processed, 2ull * data.train->size());
  EXPECT_GT(r.final_test_accuracy, 0.22);  // chance is 0.1; tiny run, loose bar
}

TEST(ProcessEngine, SessionRoutesProcessEngineKind) {
  const auto data = engine_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = engine_config(2);
  config.transport = core::TransportKind::kThread;
  const auto r = core::TrainingSession(spec, data.train, data.test, config,
                                       core::EngineKind::kProcess)
                     .run();
  EXPECT_GE(r.samples_processed, 2ull * data.train->size());
}

TEST(ProcessEngine, RejectsKillScheduleOnThreadTransport) {
  const auto data = engine_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = engine_config(2);
  config.transport = core::TransportKind::kThread;
  config.fault.kill_worker = 0;
  config.fault.kill_at_step = 1;
  EXPECT_THROW(core::ProcessEngine(spec, data.train, data.test, config),
               std::invalid_argument);
}

TEST(ProcessEngine, RejectsDeterministicServiceUnderFaults) {
  const auto data = engine_data();
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = engine_config(2);
  config.deterministic_service = true;
  config.fault.drop_pct = 5.0;
  EXPECT_THROW(core::ProcessEngine(spec, data.train, data.test, config),
               std::invalid_argument);
}

// The determinism pin (table3's w4 shape: four workers, DGS): at fault-free
// settings with strict round-robin service, the trained model must be
// bit-identical whether the workers are threads sharing the process, forked
// processes on a Unix socket, or forked processes on loopback TCP. This is
// what certifies that the socket path changes *how bytes move* and nothing
// about the training math.
TEST(ProcessEngine, FinalModelIsTransportInvariant) {
  const auto data = engine_data(13);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());
  auto config = engine_config(4);
  config.deterministic_service = true;

  config.transport = core::TransportKind::kThread;
  const auto thread_run =
      core::ProcessEngine(spec, data.train, data.test, config).run();
  config.transport = core::TransportKind::kUds;
  const auto uds_run =
      core::ProcessEngine(spec, data.train, data.test, config).run();
  config.transport = core::TransportKind::kTcp;
  const auto tcp_run =
      core::ProcessEngine(spec, data.train, data.test, config).run();

  ASSERT_FALSE(thread_run.final_model.empty());
  EXPECT_EQ(thread_run.final_model, uds_run.final_model);    // byte-for-byte
  EXPECT_EQ(thread_run.final_model, tcp_run.final_model);
  EXPECT_DOUBLE_EQ(thread_run.final_test_accuracy, uds_run.final_test_accuracy);
  EXPECT_DOUBLE_EQ(thread_run.final_test_accuracy, tcp_run.final_test_accuracy);
  EXPECT_EQ(thread_run.samples_processed, uds_run.samples_processed);
  EXPECT_EQ(thread_run.samples_processed, tcp_run.samples_processed);
}

}  // namespace
