// Tests for the comm substrate: channels under real threads, the network
// timing model, shared-link FIFO semantics, byte accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "comm/channel.h"
#include "comm/message.h"
#include "comm/network.h"
#include "comm/stats.h"

namespace {

using namespace dgs::comm;

// ---------------------------------------------------------------- Channel

TEST(Channel, SendReceiveSingleThread) {
  Channel<int> ch;
  EXPECT_TRUE(ch.send(42));
  EXPECT_EQ(ch.size(), 1u);
  const auto v = ch.receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(Channel, TryReceiveEmptyReturnsNullopt) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
  ch.send(1);
  EXPECT_TRUE(ch.try_receive().has_value());
}

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  for (int i = 0; i < 10; ++i) ch.send(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*ch.receive(), i);
}

TEST(Channel, CloseUnblocksReceivers) {
  Channel<int> ch;
  std::thread t([&] {
    const auto v = ch.receive();
    EXPECT_FALSE(v.has_value());
  });
  ch.close();
  t.join();
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.send(1));
}

TEST(Channel, DrainsQueuedValuesAfterClose) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.close();
  EXPECT_EQ(*ch.receive(), 1);
  EXPECT_EQ(*ch.receive(), 2);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel<int> ch;
  constexpr int kProducers = 8, kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.send(p * kPerProducer + i);
    });
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto v = ch.receive();
    ASSERT_TRUE(v.has_value());
    ASSERT_FALSE(seen[static_cast<std::size_t>(*v)]);
    seen[static_cast<std::size_t>(*v)] = true;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, MoveOnlyPayload) {
  Channel<std::unique_ptr<int>> ch;
  ch.send(std::make_unique<int>(5));
  auto v = ch.receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

// ------------------------------------------------------- bounded channels

TEST(Channel, DefaultIsUnbounded) {
  Channel<int> ch;
  EXPECT_EQ(ch.capacity(), 0u);
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(ch.send(i));  // never blocks
}

TEST(Channel, TrySendRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_EQ(ch.capacity(), 2u);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));  // full, non-blocking refusal
  EXPECT_EQ(*ch.receive(), 1);
  EXPECT_TRUE(ch.try_send(3));  // slot freed by the receive
}

TEST(Channel, BoundedSendBlocksUntilReceiverDrains) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(0));
  std::atomic<bool> sent{false};
  std::thread producer([&] {
    EXPECT_TRUE(ch.send(1));  // must block: capacity 1, queue holds 0
    sent.store(true);
  });
  // The producer cannot complete before a receive makes room. (A sleep-free
  // check would race, so only assert the strong post-receive ordering.)
  EXPECT_EQ(*ch.receive(), 0);
  EXPECT_EQ(*ch.receive(), 1);  // blocked send completed after the drain
  producer.join();
  EXPECT_TRUE(sent.load());
}

TEST(Channel, CloseUnblocksBlockedSenders) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(0));
  std::thread producer([&] {
    EXPECT_FALSE(ch.send(1));  // blocked on full, then woken by close
  });
  // Give the producer a moment to park in send(); close must wake it even
  // though nothing was received.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  producer.join();
  EXPECT_EQ(*ch.receive(), 0);  // queued value still drains after close
}

TEST(Channel, CloseSendRaceNeverLosesAcknowledgedValues) {
  // Hammer the close/send race: every send that reported true must be
  // received; sends that reported false must not be.
  for (int round = 0; round < 50; ++round) {
    Channel<int> ch(4);
    std::atomic<int> acknowledged{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p)
      producers.emplace_back([&ch, &acknowledged] {
        for (int i = 0; i < 100; ++i)
          if (ch.send(i)) acknowledged.fetch_add(1);
      });
    std::thread closer([&ch] { ch.close(); });
    int received = 0;
    while (ch.receive().has_value()) ++received;
    for (auto& t : producers) t.join();
    closer.join();
    // Consumer drained until nullopt after close; late acknowledged sends are
    // impossible because send() re-checks closed_ under the lock.
    EXPECT_EQ(received, acknowledged.load());
  }
}

// ------------------------------------------------------ timed channel ops

using namespace std::chrono_literals;

TEST(Channel, SendForTimesOutWhenFull) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(0));
  EXPECT_EQ(ch.send_for(1, 2ms), ChannelStatus::kTimedOut);
  EXPECT_EQ(ch.size(), 1u);  // the timed-out value was not enqueued
}

TEST(Channel, SendForSucceedsOnceDrained) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(0));
  std::thread consumer([&] {
    std::this_thread::sleep_for(5ms);
    EXPECT_EQ(*ch.receive(), 0);
  });
  EXPECT_EQ(ch.send_for(1, 1000ms), ChannelStatus::kOk);
  consumer.join();
  EXPECT_EQ(*ch.receive(), 1);
}

TEST(Channel, CloseWhileBlockedInSendForReturnsClosed) {
  // Regression guard for the shutdown path: a sender parked on a full
  // channel must get a status back when the channel closes under it — not
  // crash, not hang, not pretend the value was delivered.
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(0));
  std::thread closer([&] {
    std::this_thread::sleep_for(5ms);
    ch.close();
  });
  EXPECT_EQ(ch.send_for(1, 10'000ms), ChannelStatus::kClosed);
  closer.join();
  EXPECT_EQ(*ch.receive(), 0);  // queued value still drains after close
}

TEST(Channel, SendForOnClosedChannelReturnsClosedImmediately) {
  Channel<int> ch(1);
  ch.close();
  EXPECT_EQ(ch.send_for(1, 1000ms), ChannelStatus::kClosed);
}

TEST(Channel, ReceiveForTimesOutOnEmpty) {
  Channel<int> ch;
  int out = -1;
  EXPECT_EQ(ch.receive_for(out, 2ms), ChannelStatus::kTimedOut);
  EXPECT_EQ(out, -1);
}

TEST(Channel, ReceiveForGetsValueSentLater) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(5ms);
    ch.send(7);
  });
  int out = -1;
  EXPECT_EQ(ch.receive_for(out, 1000ms), ChannelStatus::kOk);
  EXPECT_EQ(out, 7);
  producer.join();
}

TEST(Channel, ReceiveForDrainsBeforeReportingClosed) {
  Channel<int> ch;
  ch.send(1);
  ch.close();
  int out = 0;
  EXPECT_EQ(ch.receive_for(out, 1ms), ChannelStatus::kOk);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(ch.receive_for(out, 1ms), ChannelStatus::kClosed);
}

// ------------------------------------------------------------ NetworkModel

TEST(NetworkModel, TransferTimeMatchesClosedForm) {
  const NetworkModel net{1e9, 1e-3};  // 1 Gbps, 1 ms latency
  // 1 MB at 1 Gbps = 8e6 bits / 1e9 bps = 8 ms, plus latency.
  EXPECT_NEAR(net.transfer_seconds(1'000'000), 0.009, 1e-9);
}

TEST(NetworkModel, TenGbpsTenTimesFasterThanOneGbps) {
  const auto fast = NetworkModel::ten_gbps();
  const auto slow = NetworkModel::one_gbps();
  const std::size_t bytes = 10'000'000;
  const double ratio = (slow.transfer_seconds(bytes) - slow.latency_s) /
                       (fast.transfer_seconds(bytes) - fast.latency_s);
  EXPECT_NEAR(ratio, 10.0, 1e-9);
}

TEST(NetworkModel, IdealIsFree) {
  const auto net = NetworkModel::ideal();
  EXPECT_TRUE(net.is_ideal());
  EXPECT_EQ(net.transfer_seconds(123456789), 0.0);
}

// -------------------------------------------------------------- SharedLink

TEST(SharedLink, SerializesOverlappingTransfers) {
  SharedLink link;
  // Transfer A arrives at t=0 and takes 2s; B arrives at t=1 and takes 1s.
  EXPECT_DOUBLE_EQ(link.begin(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(link.begin(1.0, 1.0), 3.0);  // queued behind A
  EXPECT_DOUBLE_EQ(link.busy_seconds(), 3.0);
}

TEST(SharedLink, IdleGapsDoNotAccumulate) {
  SharedLink link;
  EXPECT_DOUBLE_EQ(link.begin(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(link.begin(10.0, 1.0), 11.0);  // starts fresh at t=10
  EXPECT_DOUBLE_EQ(link.busy_seconds(), 2.0);
}

TEST(SharedLink, ResetClearsState) {
  SharedLink link;
  link.begin(0.0, 5.0);
  link.reset();
  EXPECT_DOUBLE_EQ(link.next_free_time(), 0.0);
  EXPECT_DOUBLE_EQ(link.begin(0.0, 1.0), 1.0);
}

// ------------------------------------------------------------- ByteCounter

TEST(ByteCounter, AccumulatesDirections) {
  ByteCounter c;
  c.count_up(100);
  c.count_up(50);
  c.count_down(10);
  EXPECT_EQ(c.upward_bytes, 150u);
  EXPECT_EQ(c.upward_messages, 2u);
  EXPECT_EQ(c.downward_bytes, 10u);
  EXPECT_EQ(c.total_bytes(), 160u);
}

TEST(ByteCounter, PlusEqualsMerges) {
  ByteCounter a, b;
  a.count_up(5);
  b.count_down(7);
  a += b;
  EXPECT_EQ(a.total_bytes(), 12u);
  EXPECT_EQ(a.downward_messages, 1u);
}

// ---------------------------------------------------------------- Message

TEST(Message, WireSizeIncludesHeader) {
  Message m;
  m.payload.resize(100);
  EXPECT_EQ(m.wire_size(), 100u + kMessageHeaderBytes);
}

}  // namespace
