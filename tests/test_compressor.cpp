// Tests for the dual-way compression pipeline (sparse/compressor.h):
// codec naming, the per-stage transform/encode/decode round trips — with
// the bit-exactness property that the decoder reconstructs exactly what
// transform() reported (Eq. 6b) — the NaN / signed-zero policy, the SBC
// Golomb-Rice edge cases, the versioned wire-format registry, and an
// allocation-counter proof that the lossy encode path stops allocating
// once its output buffer has warmed up.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "sparse/codec.h"
#include "sparse/compressor.h"
#include "sparse/coo.h"
#include "sparse/quantize.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter (same idiom as test_select.cpp): every operator
// new in this binary bumps it. The AllocationFree tests must not allocate
// (including gtest assertions) inside the measured section.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dgs;
using namespace dgs::sparse;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

LayerChunk make_chunk(std::uint32_t layer, std::uint32_t dense_size,
                      std::vector<std::uint32_t> idx, std::vector<float> val) {
  LayerChunk c;
  c.layer = layer;
  c.dense_size = dense_size;
  c.idx = std::move(idx);
  c.val = std::move(val);
  return c;
}

SparseUpdate one_layer(LayerChunk chunk) {
  SparseUpdate u;
  u.layers.push_back(std::move(chunk));
  return u;
}

/// Random sparse chunk with strictly ascending indices (required by SBC).
LayerChunk random_chunk(std::uint32_t layer, std::uint32_t dense_size,
                        double density, std::uint64_t seed) {
  util::Rng rng(seed);
  LayerChunk c;
  c.layer = layer;
  c.dense_size = dense_size;
  for (std::uint32_t i = 0; i < dense_size; ++i) {
    if (rng.uniform() >= density) continue;
    c.idx.push_back(i);
    const float mag = static_cast<float>(rng.uniform()) * 2.0f + 0.01f;
    c.val.push_back(rng.uniform() < 0.5 ? -mag : mag);
  }
  return c;
}

/// Apply the stage's transform to a copy of every chunk.
SparseUpdate transformed(const Compressor& stage, SparseUpdate u) {
  for (auto& c : u.layers) stage.transform(c);
  return u;
}

void expect_chunks_equal(const LayerChunk& a, const LayerChunk& b) {
  EXPECT_EQ(a.layer, b.layer);
  EXPECT_EQ(a.dense_size, b.dense_size);
  ASSERT_EQ(a.idx, b.idx);
  ASSERT_EQ(a.val.size(), b.val.size());
  for (std::size_t i = 0; i < a.val.size(); ++i) {
    if (std::isnan(a.val[i])) {
      EXPECT_TRUE(std::isnan(b.val[i])) << "entry " << i;
    } else {
      // Bitwise equality, not a tolerance: v_k is charged with exactly
      // these values, so the wire must reproduce them.
      EXPECT_EQ(a.val[i], b.val[i]) << "entry " << i;
    }
  }
}

/// Densify a decoded segment (sparse or dense) for position-wise checks.
std::vector<float> segment_dense(const DecodedLayer& segment) {
  if (!segment.sparse) return segment.dense;
  return densify(segment.chunk);
}

// ------------------------------------------------------------ codec naming

TEST(CodecNames, RoundTripThroughParse) {
  const Codec all[] = {Codec::kCoo,   Codec::kDense, Codec::kTernary,
                       Codec::kSparseTernary, Codec::kQcoo8, Codec::kQcoo4,
                       Codec::kSbc};
  for (Codec codec : all) {
    EXPECT_EQ(parse_codec(codec_name(codec)), codec) << codec_name(codec);
  }
}

TEST(CodecNames, AliasesAndCase) {
  EXPECT_EQ(parse_codec("QCOO8"), Codec::kQcoo8);
  EXPECT_EQ(parse_codec("qcoo4"), Codec::kQcoo4);
  EXPECT_EQ(parse_codec("sternary"), Codec::kSparseTernary);
  EXPECT_EQ(parse_codec("SBC"), Codec::kSbc);
  EXPECT_THROW(parse_codec("gzip"), std::invalid_argument);
  EXPECT_THROW(parse_codec(""), std::invalid_argument);
}

TEST(CodecNames, StageSingletonsMatchTheirCodec) {
  const Codec all[] = {Codec::kCoo,   Codec::kDense, Codec::kTernary,
                       Codec::kSparseTernary, Codec::kQcoo8, Codec::kQcoo4,
                       Codec::kSbc};
  for (Codec codec : all) {
    const Compressor& stage = compressor_for(codec);
    EXPECT_EQ(stage.codec(), codec);
    EXPECT_STREQ(stage.name(), codec_name(codec));
    // Stages are stateless singletons: the same object every time.
    EXPECT_EQ(&stage, &compressor_for(codec));
    const bool lossy = codec == Codec::kQcoo8 || codec == Codec::kQcoo4 ||
                       codec == Codec::kSbc;
    EXPECT_EQ(stage.lossy(), lossy) << codec_name(codec);
  }
}

TEST(CodecNames, LosslessTransformIsIdentity) {
  for (Codec codec : {Codec::kCoo, Codec::kDense, Codec::kTernary,
                      Codec::kSparseTernary}) {
    LayerChunk c = make_chunk(3, 16, {1, 5, 9}, {0.5f, -0.25f, 1.0f});
    const LayerChunk before = c;
    compressor_for(codec).transform(c);
    expect_chunks_equal(before, c);
  }
}

// ----------------------------------------------------- lossless stage trips

TEST(LosslessStages, CooRoundTripViaRegistry) {
  SparseUpdate u = one_layer(random_chunk(0, 200, 0.2, 11));
  u.layers.push_back(random_chunk(2, 64, 0.5, 12));
  const Bytes payload = compressor_for(Codec::kCoo).encode(u);
  EXPECT_TRUE(is_sparse_payload(payload));
  const DecodedUpdate decoded = decode_any(payload);
  ASSERT_EQ(decoded.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(decoded[j].sparse);
    expect_chunks_equal(u.layers[j], decoded[j].chunk);
  }
}

TEST(LosslessStages, DenseStageDensifiesSparseInput) {
  SparseUpdate u = one_layer(make_chunk(1, 8, {2, 5}, {0.5f, -1.5f}));
  const Bytes payload = compressor_for(Codec::kDense).encode(u);
  EXPECT_TRUE(is_dense_payload(payload));
  const DecodedUpdate decoded = decode_any(payload);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_FALSE(decoded[0].sparse);
  EXPECT_EQ(decoded[0].layer(), 1u);
  const std::vector<float> expected = {0, 0, 0.5f, 0, 0, -1.5f, 0, 0};
  EXPECT_EQ(decoded[0].dense, expected);
}

TEST(LosslessStages, TernaryStagePacksPreQuantizedValues) {
  // The ternary contract: the worker algorithm already quantized to
  // +/- one scale per layer; the stage only packs.
  const float s = 0.75f;
  SparseUpdate u = one_layer(make_chunk(0, 10, {0, 3, 9}, {s, -s, s}));
  const Bytes payload = compressor_for(Codec::kTernary).encode(u);
  const DecodedUpdate decoded = decode_any(payload);
  ASSERT_EQ(decoded.size(), 1u);
  const std::vector<float> dense = segment_dense(decoded[0]);
  ASSERT_EQ(dense.size(), 10u);
  EXPECT_EQ(dense[0], s);
  EXPECT_EQ(dense[3], -s);
  EXPECT_EQ(dense[9], s);
  for (std::size_t i : {1u, 2u, 4u, 5u, 6u, 7u, 8u}) EXPECT_EQ(dense[i], 0.0f);
}

TEST(LosslessStages, TernaryStageRejectsNonTernaryValues) {
  SparseUpdate u = one_layer(make_chunk(0, 4, {0, 1}, {1.0f, 0.5f}));
  EXPECT_THROW(compressor_for(Codec::kTernary).encode(u),
               std::invalid_argument);
}

TEST(LosslessStages, SparseTernaryRoundTrip) {
  const float s = 0.125f;
  SparseUpdate u = one_layer(make_chunk(4, 100, {7, 42, 99}, {-s, s, -s}));
  const Bytes payload = compressor_for(Codec::kSparseTernary).encode(u);
  const DecodedUpdate decoded = decode_any(payload);
  ASSERT_EQ(decoded.size(), 1u);
  ASSERT_TRUE(decoded[0].sparse);
  expect_chunks_equal(u.layers[0], decoded[0].chunk);
}

// --------------------------------------------------------- quantized stages

/// The pipeline property behind Eq. 6b: decode(encode(u)) reconstructs
/// exactly the values transform() reported — bit-identical, any layout.
void check_quant_round_trip(Codec codec, const SparseUpdate& u) {
  const Compressor& stage = compressor_for(codec);
  const SparseUpdate expected = transformed(stage, u);
  const DecodedUpdate decoded = decode_any(stage.encode(u));
  ASSERT_EQ(decoded.size(), u.layers.size());
  for (std::size_t j = 0; j < decoded.size(); ++j) {
    EXPECT_EQ(decoded[j].layer(), u.layers[j].layer);
    EXPECT_EQ(decoded[j].dense_size(), u.layers[j].dense_size);
    const std::vector<float> got = segment_dense(decoded[j]);
    const std::vector<float> want = densify(expected.layers[j]);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], want[i]) << "layer " << j << " position " << i;
  }
}

TEST(QuantStage, SparseLayoutRoundTripIsBitExact) {
  // Low density over a large layer keeps the sparse layout cheaper.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    check_quant_round_trip(Codec::kQcoo8,
                           one_layer(random_chunk(0, 4096, 0.01, seed)));
    check_quant_round_trip(Codec::kQcoo4,
                           one_layer(random_chunk(0, 4096, 0.01, seed + 10)));
  }
}

TEST(QuantStage, DenseLayoutRoundTripIsBitExact) {
  // Density ~1 over a small layer makes the dense code plane cheaper; odd
  // dense_size exercises the 4-bit pad nibble.
  SparseUpdate u8 = one_layer(make_chunk(
      0, 8, {0, 1, 2, 3, 4, 5, 6, 7},
      {1.0f, -1.0f, 0.5f, -0.5f, 0.25f, -0.25f, 0.75f, -0.75f}));
  check_quant_round_trip(Codec::kQcoo8, u8);
  SparseUpdate u4 = one_layer(make_chunk(
      2, 7, {0, 1, 2, 3, 4, 5, 6},
      {1.0f, -1.0f, 0.5f, -0.5f, 0.25f, -0.25f, 0.125f}));
  check_quant_round_trip(Codec::kQcoo4, u4);
}

TEST(QuantStage, DenseLayoutIsSelectedWhenCheaper) {
  // dense_size = nnz = 8: sparse layout would cost 8*4 + 8 = 40 bytes of
  // body, the dense plane costs 8. The decoded segment comes back dense.
  SparseUpdate u = one_layer(make_chunk(
      0, 8, {0, 1, 2, 3, 4, 5, 6, 7},
      {1.0f, -1.0f, 0.5f, -0.5f, 0.25f, -0.25f, 0.75f, -0.75f}));
  const DecodedUpdate decoded =
      decode_any(compressor_for(Codec::kQcoo8).encode(u));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_FALSE(decoded[0].sparse);

  // At 1% density the sparse layout wins and the segment stays sparse.
  const DecodedUpdate sparse_decoded = decode_any(
      compressor_for(Codec::kQcoo8).encode(one_layer(random_chunk(0, 4096, 0.01, 7))));
  ASSERT_EQ(sparse_decoded.size(), 1u);
  EXPECT_TRUE(sparse_decoded[0].sparse);
}

TEST(QuantStage, PowerOfTwoScaleMakesGridExact) {
  // absmax = 1.0, qmax = 127: scale = 2^-6; every power-of-two input
  // lands exactly on the grid, so transform is the identity on them.
  SparseUpdate u = one_layer(
      make_chunk(0, 1024, {1, 2, 3, 4}, {1.0f, -0.5f, 0.25f, -0.015625f}));
  const SparseUpdate t = transformed(compressor_for(Codec::kQcoo8), u);
  expect_chunks_equal(u.layers[0], t.layers[0]);
}

TEST(QuantStage, TransformIsIdempotent) {
  for (Codec codec : {Codec::kQcoo8, Codec::kQcoo4, Codec::kSbc}) {
    const Compressor& stage = compressor_for(codec);
    LayerChunk once = random_chunk(0, 512, 0.1, 21);
    stage.transform(once);
    LayerChunk twice = once;
    stage.transform(twice);
    expect_chunks_equal(once, twice);
  }
}

TEST(QuantStage, EncodeMatchesEncodeOfTransformedCopy) {
  // encode(u) must equal encode(transform(u)): the shard transforms the
  // chunk it charges to v_k, then the server encodes that same chunk.
  SparseUpdate u = one_layer(random_chunk(0, 2048, 0.05, 33));
  for (Codec codec : {Codec::kQcoo8, Codec::kQcoo4}) {
    const Compressor& stage = compressor_for(codec);
    EXPECT_EQ(stage.encode(u), stage.encode(transformed(stage, u)));
  }
}

TEST(QuantStage, ZeroRoundingEntriesAreDropped) {
  // absmax 1.0 with qmax 7 gives scale 2^-2; 0.05 rounds to code 0 and
  // must vanish from the transformed chunk and the wire.
  SparseUpdate u =
      one_layer(make_chunk(0, 1000, {5, 500}, {1.0f, 0.05f}));
  const SparseUpdate t = transformed(compressor_for(Codec::kQcoo4), u);
  ASSERT_EQ(t.layers[0].nnz(), 1u);
  EXPECT_EQ(t.layers[0].idx[0], 5u);
  const DecodedUpdate decoded =
      decode_any(compressor_for(Codec::kQcoo4).encode(u));
  ASSERT_TRUE(decoded[0].sparse);
  expect_chunks_equal(t.layers[0], decoded[0].chunk);
}

TEST(QuantStage, NonFiniteValuesSaturateWithSign) {
  // Policy (compressor.h): the grid cannot express NaN/inf, so non-finite
  // entries ship at the largest magnitude code with their sign bit —
  // visible at the receiver, never silently dropped.
  SparseUpdate u = one_layer(
      make_chunk(0, 1000, {1, 2, 3}, {0.5f, kInf, -kInf}));
  const SparseUpdate t = transformed(compressor_for(Codec::kQcoo8), u);
  ASSERT_EQ(t.layers[0].nnz(), 3u);
  // scale = pow2_scale(0.5, 127) = 2^-7 (smallest power of two >= 0.5/127);
  // saturated magnitude = 127 * 2^-7.
  const float sat = 127.0f * std::ldexp(1.0f, -7);
  EXPECT_EQ(t.layers[0].val[1], sat);
  EXPECT_EQ(t.layers[0].val[2], -sat);
  const DecodedUpdate decoded =
      decode_any(compressor_for(Codec::kQcoo8).encode(u));
  ASSERT_TRUE(decoded[0].sparse);
  expect_chunks_equal(t.layers[0], decoded[0].chunk);
}

TEST(QuantStage, LayerWithNoFiniteMagnitudeBecomesEmpty) {
  // All-zero or all-non-finite layers have no usable scale: the chunk
  // compresses to empty and the mass stays in M - v_k.
  for (float v : {0.0f, kNaN}) {
    SparseUpdate u = one_layer(make_chunk(0, 64, {1, 2}, {v, v}));
    const SparseUpdate t = transformed(compressor_for(Codec::kQcoo8), u);
    EXPECT_EQ(t.layers[0].nnz(), 0u) << "value " << v;
    const DecodedUpdate decoded =
        decode_any(compressor_for(Codec::kQcoo8).encode(u));
    ASSERT_EQ(decoded.size(), 1u);
    for (float x : segment_dense(decoded[0])) EXPECT_EQ(x, 0.0f);
  }
}

TEST(QuantStage, EmptyUpdateAndEmptyLayer) {
  const DecodedUpdate none =
      decode_any(compressor_for(Codec::kQcoo8).encode(SparseUpdate{}));
  EXPECT_TRUE(none.empty());
  SparseUpdate u = one_layer(make_chunk(3, 32, {}, {}));
  const DecodedUpdate decoded =
      decode_any(compressor_for(Codec::kQcoo4).encode(u));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].layer(), 3u);
  EXPECT_EQ(decoded[0].dense_size(), 32u);
  for (float x : segment_dense(decoded[0])) EXPECT_EQ(x, 0.0f);
}

// --------------------------------------------------------------- SBC stage

TEST(SbcStage, TransformProducesMeanMagnitudeSigns) {
  SparseUpdate u = one_layer(
      make_chunk(0, 100, {1, 2, 3, 4}, {1.0f, -3.0f, 2.0f, -0.0f}));
  LayerChunk t = u.layers[0];
  compressor_for(Codec::kSbc).transform(t);
  // Exact zeros drop; mu = mean(|1|, |-3|, |2|) = 2.
  ASSERT_EQ(t.nnz(), 3u);
  EXPECT_EQ(t.val[0], 2.0f);
  EXPECT_EQ(t.val[1], -2.0f);
  EXPECT_EQ(t.val[2], 2.0f);
}

TEST(SbcStage, NonFiniteValuesShipAsSignedMu) {
  SparseUpdate u = one_layer(
      make_chunk(0, 100, {1, 2, 3}, {4.0f, kInf, -kInf}));
  LayerChunk t = u.layers[0];
  compressor_for(Codec::kSbc).transform(t);
  // mu averages the finite magnitudes only (= 4); the poisoned entries
  // stay visible as +/-mu with their sign bit.
  ASSERT_EQ(t.nnz(), 3u);
  EXPECT_EQ(t.val[0], 4.0f);
  EXPECT_EQ(t.val[1], 4.0f);
  EXPECT_EQ(t.val[2], -4.0f);
}

void check_sbc_round_trip(const SparseUpdate& raw) {
  const Compressor& stage = compressor_for(Codec::kSbc);
  const SparseUpdate t = transformed(stage, raw);
  const Bytes payload = stage.encode(t);
  EXPECT_TRUE(is_sbc_payload(payload));
  const SparseUpdate decoded = decode_sbc(payload);
  ASSERT_EQ(decoded.layers.size(), t.layers.size());
  for (std::size_t j = 0; j < t.layers.size(); ++j)
    expect_chunks_equal(t.layers[j], decoded.layers[j]);
  // And via the registry.
  const DecodedUpdate via_registry = decode_any(payload);
  ASSERT_EQ(via_registry.size(), t.layers.size());
  for (std::size_t j = 0; j < t.layers.size(); ++j) {
    ASSERT_TRUE(via_registry[j].sparse);
    expect_chunks_equal(t.layers[j], via_registry[j].chunk);
  }
}

TEST(SbcStage, RoundTripRandomDensities) {
  for (double density : {0.01, 0.1, 0.5}) {
    check_sbc_round_trip(one_layer(random_chunk(0, 5000, density, 5)));
    check_sbc_round_trip(one_layer(random_chunk(1, 257, density, 6)));
  }
}

TEST(SbcStage, RiceEdgeCases) {
  // First and last positions, a consecutive run (all-zero gaps) and one
  // huge gap in the same stream.
  check_sbc_round_trip(one_layer(make_chunk(
      0, 1u << 20, {0, 1, 2, 3, (1u << 20) - 1},
      {1.0f, -1.0f, 1.0f, 1.0f, -1.0f})));
  // Single entry at index 0 (gap 0) and at the far end (maximal gap).
  check_sbc_round_trip(one_layer(make_chunk(0, 1000, {0}, {2.0f})));
  check_sbc_round_trip(one_layer(make_chunk(0, 1000, {999}, {-2.0f})));
  // Fully dense run: every gap is zero, rice parameter 0.
  check_sbc_round_trip(one_layer(make_chunk(
      0, 8, {0, 1, 2, 3, 4, 5, 6, 7},
      {1.0f, 1.0f, -1.0f, 1.0f, -1.0f, -1.0f, 1.0f, 1.0f})));
}

TEST(SbcStage, EmptyAndMultiLayer) {
  check_sbc_round_trip(SparseUpdate{});
  SparseUpdate u;
  u.layers.push_back(make_chunk(0, 64, {}, {}));  // empty layer
  u.layers.push_back(random_chunk(1, 300, 0.2, 9));
  u.layers.push_back(random_chunk(5, 4096, 0.01, 10));
  check_sbc_round_trip(u);
}

TEST(SbcStage, EncodeRequiresTransformedValues) {
  // Values not on +/- one magnitude: the caller skipped transform() and
  // v_k bookkeeping would diverge from the wire — hard error.
  SparseUpdate u = one_layer(make_chunk(0, 10, {1, 2}, {1.0f, -2.0f}));
  EXPECT_THROW(compressor_for(Codec::kSbc).encode(u), std::invalid_argument);
}

TEST(SbcStage, EncodeRequiresAscendingIndices) {
  SparseUpdate u = one_layer(make_chunk(0, 10, {5, 3}, {1.0f, -1.0f}));
  EXPECT_THROW(compressor_for(Codec::kSbc).encode(u), std::invalid_argument);
  SparseUpdate dup = one_layer(make_chunk(0, 10, {4, 4}, {1.0f, 1.0f}));
  EXPECT_THROW(compressor_for(Codec::kSbc).encode(dup), std::invalid_argument);
}

// -------------------------------------------------------- format registry

TEST(FormatRegistry, NamesEveryShippedFormat) {
  const SparseUpdate sparse_u = one_layer(make_chunk(0, 16, {3}, {1.0f}));
  EXPECT_STREQ(payload_format_name(encode(sparse_u)), "coo");
  DenseUpdate dense_u;
  dense_u.layers.push_back({0, {1.0f, 2.0f}});
  EXPECT_STREQ(payload_format_name(encode(dense_u)), "dense");
  const float s = 1.0f;
  EXPECT_STREQ(payload_format_name(compressor_for(Codec::kTernary)
                                       .encode(one_layer(make_chunk(
                                           0, 4, {0}, {s})))),
               "ternary");
  EXPECT_STREQ(payload_format_name(compressor_for(Codec::kSparseTernary)
                                       .encode(one_layer(make_chunk(
                                           0, 4, {0}, {s})))),
               "sparse-ternary");
  EXPECT_STREQ(payload_format_name(
                   compressor_for(Codec::kQcoo8).encode(sparse_u)),
               "qcoo");
  EXPECT_STREQ(
      payload_format_name(compressor_for(Codec::kSbc).encode(
          transformed(compressor_for(Codec::kSbc), sparse_u))),
      "sbc");
}

TEST(FormatRegistry, UnknownMagicIsRejected) {
  const Bytes junk = {0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0};
  EXPECT_EQ(payload_format_name(junk), nullptr);
  EXPECT_THROW(decode_any(junk), std::runtime_error);
  const Bytes tiny = {0x44};  // shorter than a magic word
  EXPECT_EQ(payload_format_name(tiny), nullptr);
  EXPECT_THROW(decode_any(tiny), std::runtime_error);
  EXPECT_THROW(decode_any({}), std::runtime_error);
}

Bytes with_version(Bytes payload, std::uint8_t version) {
  payload[4] = version;
  return payload;
}

TEST(FormatRegistry, FutureVersionsAreRejectedNotMisread) {
  const SparseUpdate u = one_layer(make_chunk(0, 16, {3}, {1.0f}));
  const Bytes quant = compressor_for(Codec::kQcoo8).encode(u);
  EXPECT_THROW(decode_any(with_version(quant, 2)), std::runtime_error);
  EXPECT_THROW(decode_quantized(with_version(quant, 0)), std::runtime_error);
  const Bytes sbc = compressor_for(Codec::kSbc).encode(
      transformed(compressor_for(Codec::kSbc), u));
  EXPECT_THROW(decode_any(with_version(sbc, 2)), std::runtime_error);
  EXPECT_THROW(decode_sbc(with_version(sbc, 99)), std::runtime_error);
}

TEST(FormatRegistry, PayloadKindPredicates) {
  const SparseUpdate u = one_layer(make_chunk(0, 16, {3}, {1.0f}));
  const Bytes quant = compressor_for(Codec::kQcoo8).encode(u);
  EXPECT_TRUE(is_quantized_payload(quant));
  EXPECT_FALSE(is_sbc_payload(quant));
  EXPECT_FALSE(is_sparse_payload(quant));
  EXPECT_FALSE(is_dense_payload(quant));
  const Bytes sbc = compressor_for(Codec::kSbc).encode(
      transformed(compressor_for(Codec::kSbc), u));
  EXPECT_TRUE(is_sbc_payload(sbc));
  EXPECT_FALSE(is_quantized_payload(sbc));
  EXPECT_FALSE(is_quantized_payload({}));
  EXPECT_FALSE(is_sbc_payload({}));
}

// ------------------------------------------------------- allocation proofs

/// Steady-state encode must reuse the output buffer's capacity: after one
/// warm-up call, re-encoding the same update allocates nothing.
std::uint64_t allocations_during_second_encode(const Compressor& stage,
                                               const SparseUpdate& update) {
  Bytes out;
  stage.encode_into(update, out);  // warm-up: buffer grows to payload size
  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  stage.encode_into(update, out);
  return g_allocation_count.load(std::memory_order_relaxed) - before;
}

TEST(AllocationFree, QuantizedEncodeSteadyState) {
  const SparseUpdate u = one_layer(random_chunk(0, 8192, 0.01, 42));
  EXPECT_EQ(allocations_during_second_encode(compressor_for(Codec::kQcoo8), u),
            0u);
  EXPECT_EQ(allocations_during_second_encode(compressor_for(Codec::kQcoo4), u),
            0u);
}

TEST(AllocationFree, SbcEncodeSteadyState) {
  const Compressor& stage = compressor_for(Codec::kSbc);
  const SparseUpdate u =
      transformed(stage, one_layer(random_chunk(0, 8192, 0.01, 43)));
  EXPECT_EQ(allocations_during_second_encode(stage, u), 0u);
}

TEST(AllocationFree, CooEncodeSteadyState) {
  const SparseUpdate u = one_layer(random_chunk(0, 8192, 0.05, 44));
  EXPECT_EQ(allocations_during_second_encode(compressor_for(Codec::kCoo), u),
            0u);
}

}  // namespace
