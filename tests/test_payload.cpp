// Tests for the shared payload-apply dispatch (core/payload.h) and the
// CSV emitters (util/table.h) — the glue that every engine and bench
// harness relies on.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/payload.h"
#include "sparse/quantize.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace dgs;
using core::LayeredVec;

LayeredVec zeros(std::initializer_list<std::size_t> sizes) {
  return core::make_layered(std::vector<std::size_t>(sizes));
}

TEST(Payload, AppliesSparseCoo) {
  LayeredVec target = zeros({4, 2});
  sparse::SparseUpdate u;
  sparse::LayerChunk c;
  c.layer = 0;
  c.dense_size = 4;
  c.idx = {1, 3};
  c.val = {2.0f, -1.0f};
  u.layers.push_back(c);
  core::apply_update_payload(sparse::encode(u), target, -1.0f);
  EXPECT_FLOAT_EQ(target[0][1], -2.0f);
  EXPECT_FLOAT_EQ(target[0][3], 1.0f);
  EXPECT_FLOAT_EQ(target[1][0], 0.0f);
}

TEST(Payload, AppliesDense) {
  LayeredVec target = zeros({3});
  sparse::DenseUpdate u;
  u.layers.push_back({0, {1.0f, 2.0f, 3.0f}});
  core::apply_update_payload(sparse::encode(u), target, 2.0f);
  EXPECT_FLOAT_EQ(target[0][2], 6.0f);
}

TEST(Payload, AppliesTernary) {
  LayeredVec target = zeros({8});
  util::Rng rng(1);
  const std::vector<float> values{1.0f, -1.0f, 1.0f, -1.0f,
                                  1.0f, -1.0f, 1.0f, -1.0f};
  sparse::TernaryUpdate u;
  u.layers.push_back(sparse::ternary_quantize(0, values, rng));
  core::apply_update_payload(sparse::encode(u), target, -1.0f);
  // |v| == scale for every input, so all entries ship at +/- 1.
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_FLOAT_EQ(target[0][i], i % 2 == 0 ? -1.0f : 1.0f);
}

TEST(Payload, AppliesSparseTernary) {
  LayeredVec target = zeros({10});
  sparse::SparseUpdate u;
  sparse::LayerChunk c;
  c.layer = 0;
  c.dense_size = 10;
  c.idx = {2, 7};
  c.val = {0.5f, -0.5f};
  u.layers.push_back(c);
  core::apply_update_payload(sparse::encode_sparse_ternary(u), target, 1.0f);
  EXPECT_FLOAT_EQ(target[0][2], 0.5f);
  EXPECT_FLOAT_EQ(target[0][7], -0.5f);
}

TEST(Payload, RejectsShapeMismatch) {
  LayeredVec target = zeros({4});
  sparse::DenseUpdate u;
  u.layers.push_back({0, {1.0f, 2.0f}});  // wrong length
  EXPECT_THROW(core::apply_update_payload(sparse::encode(u), target, 1.0f),
               std::runtime_error);
  sparse::DenseUpdate v;
  v.layers.push_back({5, {1.0f}});  // layer out of range
  EXPECT_THROW(core::apply_update_payload(sparse::encode(v), target, 1.0f),
               std::runtime_error);
}

TEST(Payload, RejectsGarbage) {
  LayeredVec target = zeros({4});
  sparse::Bytes garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(core::apply_update_payload(garbage, target, 1.0f),
               std::runtime_error);
}

TEST(Payload, AppliesQuantizedAndSbc) {
  // The new downward formats flow through the same dispatch as the legacy
  // ones: what the stage's transform() reports is exactly what lands.
  for (const sparse::Codec codec :
       {sparse::Codec::kQcoo8, sparse::Codec::kQcoo4, sparse::Codec::kSbc}) {
    LayeredVec target = zeros({16, 8});
    sparse::SparseUpdate u;
    sparse::LayerChunk c;
    c.layer = 1;
    c.dense_size = 8;
    c.idx = {0, 3, 7};
    c.val = {0.5f, -1.0f, 0.25f};
    const auto& stage = sparse::compressor_for(codec);
    u.layers.push_back(c);
    stage.transform(u.layers[0]);
    core::apply_update_payload(stage.encode(u), target, 1.0f);
    std::vector<float> expected(8, 0.0f);
    sparse::scatter_add(u.layers[0], 1.0f, expected);
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_EQ(target[1][i], expected[i]) << sparse::codec_name(codec);
    for (float x : target[0]) EXPECT_EQ(x, 0.0f);
  }
}

TEST(Payload, LegacyFormatsStillDecodeThroughRegistry) {
  // Grandfathered version-0 payloads (recorded runs, retransmit buffers,
  // kFullModel rejoin snapshots) must decode forever via decode_update.
  sparse::SparseUpdate sparse_u;
  sparse::LayerChunk c;
  c.layer = 0;
  c.dense_size = 6;
  c.idx = {1, 4};
  c.val = {1.5f, -2.5f};
  sparse_u.layers.push_back(c);

  const core::DecodedUpdate coo = core::decode_update(sparse::encode(sparse_u));
  ASSERT_EQ(coo.size(), 1u);
  EXPECT_TRUE(coo[0].sparse);
  EXPECT_EQ(coo[0].chunk.idx, c.idx);
  EXPECT_EQ(coo[0].chunk.val, c.val);

  sparse::DenseUpdate dense_u;
  dense_u.layers.push_back({2, {1.0f, 2.0f, 3.0f}});
  const core::DecodedUpdate dense = core::decode_update(sparse::encode(dense_u));
  ASSERT_EQ(dense.size(), 1u);
  EXPECT_FALSE(dense[0].sparse);
  EXPECT_EQ(dense[0].layer(), 2u);
  EXPECT_EQ(dense[0].dense, dense_u.layers[0].values);

  sparse::SparseUpdate ternary_u;
  sparse::LayerChunk tc;
  tc.layer = 0;
  tc.dense_size = 6;
  tc.idx = {1, 4};
  tc.val = {0.5f, -0.5f};  // sparse-ternary requires +/- one scale
  ternary_u.layers.push_back(tc);
  const core::DecodedUpdate st =
      core::decode_update(sparse::encode_sparse_ternary(ternary_u));
  ASSERT_EQ(st.size(), 1u);
  EXPECT_TRUE(st[0].sparse);
  EXPECT_EQ(st[0].chunk.idx, tc.idx);
  EXPECT_EQ(st[0].chunk.val, tc.val);
}

TEST(Payload, FlattenDenseRoundTripsFullModelSnapshot) {
  // The kFullModel rejoin snapshot is a dense payload; flatten must
  // reproduce the flat model bit-exactly and reject non-dense payloads
  // with the registry's name for them.
  sparse::DenseUpdate snapshot;
  snapshot.layers.push_back({0, {1.0f, -2.0f}});
  snapshot.layers.push_back({1, {0.25f, 0.5f, 0.75f}});
  const std::vector<float> flat =
      core::flatten_dense_payload(sparse::encode(snapshot));
  const std::vector<float> expected = {1.0f, -2.0f, 0.25f, 0.5f, 0.75f};
  EXPECT_EQ(flat, expected);

  sparse::SparseUpdate sparse_u;
  sparse::LayerChunk c;
  c.layer = 0;
  c.dense_size = 4;
  c.idx = {0};
  c.val = {1.0f};
  sparse_u.layers.push_back(c);
  EXPECT_THROW(core::flatten_dense_payload(sparse::encode(sparse_u)),
               std::runtime_error);
  EXPECT_THROW(core::flatten_dense_payload(
                   sparse::compressor_for(sparse::Codec::kQcoo8).encode(sparse_u)),
               std::runtime_error);
}

// ------------------------------------------------------------------- CSV

TEST(TableCsv, WritesAndEscapes) {
  const std::string path = std::string(::testing::TempDir()) + "/table.csv";
  util::Table table({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_row({"with,comma", "2"});
  table.add_row({"with\"quote", "3"});
  table.write_csv(path);

  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string contents = ss.str();
  EXPECT_NE(contents.find("name,value\n"), std::string::npos);
  EXPECT_NE(contents.find("\"with,comma\",2"), std::string::npos);
  EXPECT_NE(contents.find("\"with\"\"quote\",3"), std::string::npos);
}

TEST(TableCsv, ThrowsOnUnwritablePath) {
  util::Table table({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.write_csv("/nonexistent/dir/x.csv"), std::runtime_error);
}

TEST(CurveCsv, WritesSeriesWithBlanksForNan) {
  const std::string path = std::string(::testing::TempDir()) + "/curve.csv";
  util::CurveSet curve("epoch", {"a", "b"});
  curve.add_point(1, {0.5, std::nan("")});
  curve.add_point(2, {0.25, 0.75});
  curve.write_csv(path);

  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "epoch,a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,0.5,");  // NaN -> empty cell
  std::getline(f, line);
  EXPECT_EQ(line, "2,0.25,0.75");
}

TEST(CurveAsciiChart, HandlesLogScaleAndEmpty) {
  util::CurveSet curve("x", {"y"});
  std::ostringstream os;
  curve.print_ascii_chart(os);  // empty: no crash, no output
  EXPECT_TRUE(os.str().empty());

  curve.add_point(1, {10.0});
  curve.add_point(2, {100.0});
  curve.print_ascii_chart(os, 20, 5, /*log_y=*/true);
  EXPECT_NE(os.str().find("legend"), std::string::npos);
}

}  // namespace
