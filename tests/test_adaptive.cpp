// Runtime sparsity controller tests (core/adaptive.h, DESIGN.md §17):
// floor/budget invariants under seeded synthetic observation streams,
// bit-identical decision schedules for identical streams, hysteresis hold
// behavior, staleness/density damping toward the uniform allocation, the
// end-to-end Method::kDGSAdaptive path on every engine (with the Sim
// engine's run-to-run determinism extended to the ratio trajectory), and
// the exact-k select kernel the controller feeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/adaptive.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "sparse/select.h"
#include "sparse/topk.h"
#include "util/rng.h"

namespace dgs {
namespace {

core::CompressionConfig adaptive_compression(double base_ratio = 2.0) {
  core::CompressionConfig compression;
  compression.ratio_percent = base_ratio;
  compression.min_sparsify_size = 256;
  compression.adaptive.interval_steps = 4;
  return compression;
}

/// Deterministic synthetic mass stream: layer masses drift smoothly with a
/// seeded per-layer scale, so repeated runs see identical observations.
std::vector<double> synthetic_mass(const std::vector<std::size_t>& sizes,
                                   util::Rng& rng, std::uint64_t t) {
  std::vector<double> mass(sizes.size(), 0.0);
  for (std::size_t l = 0; l < sizes.size(); ++l) {
    const double scale = 0.5 + rng.uniform();
    const double phase = static_cast<double>((t + 1) * (l + 1));
    mass[l] = static_cast<double>(sizes[l]) * scale *
              (1.0 + 0.5 * std::sin(phase * 0.1));
  }
  return mass;
}

TEST(SparsityController, FloorAndBudgetInvariantsHoldOnEveryDecision) {
  const std::vector<std::size_t> sizes = {4096, 1024, 128, 2048, 512};
  const core::CompressionConfig compression = adaptive_compression(2.0);
  core::SparsityController controller(sizes, compression);

  // Budget = what fixed-R DGS sends per push over the adaptive layers
  // (layer 2 is below min_sparsify_size and exempt).
  std::uint64_t expected_budget = 0;
  for (std::size_t l : {0, 1, 3, 4})
    expected_budget += sparse::keep_count(sizes[l], 2.0);
  EXPECT_EQ(controller.keep_budget(), expected_budget);
  EXPECT_FALSE(controller.is_adaptive(2));
  EXPECT_EQ(controller.keep(2), sizes[2]);
  EXPECT_DOUBLE_EQ(controller.ratio_percent(2), 100.0);

  util::Rng rng(1234);
  for (std::uint64_t t = 0; t < 200; ++t) {
    controller.observe_push(synthetic_mass(sizes, rng, t));
    if (t % 3 == 0)
      controller.observe_reply(/*staleness=*/rng.uniform() * 6.0,
                               /*reply_density=*/rng.uniform());
    // Invariants after every push, not just after decisions.
    std::uint64_t total = 0;
    for (std::size_t l = 0; l < sizes.size(); ++l) {
      if (!controller.is_adaptive(l)) continue;
      EXPECT_GE(controller.keep(l),
                sparse::keep_count(sizes[l], controller.min_ratio_percent()))
          << "layer " << l << " below floor at push " << t;
      EXPECT_LE(controller.keep(l), sizes[l]);
      total += controller.keep(l);
    }
    EXPECT_LE(total, controller.keep_budget()) << "over budget at push " << t;
  }
  EXPECT_EQ(controller.decisions(), 200u / 4u);
  EXPECT_GT(controller.trajectory().size(), 0u);
  EXPECT_LE(controller.trajectory().size(),
            core::SparsityController::kMaxTrajectoryPoints);
}

TEST(SparsityController, IdenticalStreamsGiveBitIdenticalSchedules) {
  const std::vector<std::size_t> sizes = {4096, 1024, 2048, 512, 300};
  const core::CompressionConfig compression = adaptive_compression(2.0);
  core::SparsityController a(sizes, compression);
  core::SparsityController b(sizes, compression);

  util::Rng rng_a(99), rng_b(99);
  for (std::uint64_t t = 0; t < 120; ++t) {
    a.observe_push(synthetic_mass(sizes, rng_a, t));
    b.observe_push(synthetic_mass(sizes, rng_b, t));
    if (t % 5 == 1) {
      a.observe_reply(2.5, 0.4);
      b.observe_reply(2.5, 0.4);
    }
    for (std::size_t l = 0; l < sizes.size(); ++l)
      ASSERT_EQ(a.keep(l), b.keep(l)) << "push " << t << " layer " << l;
  }
  ASSERT_EQ(a.trajectory().size(), b.trajectory().size());
  for (std::size_t i = 0; i < a.trajectory().size(); ++i) {
    EXPECT_EQ(a.trajectory()[i].step, b.trajectory()[i].step);
    ASSERT_EQ(a.trajectory()[i].ratios.size(), b.trajectory()[i].ratios.size());
    for (std::size_t l = 0; l < a.trajectory()[i].ratios.size(); ++l)
      EXPECT_EQ(a.trajectory()[i].ratios[l], b.trajectory()[i].ratios[l]);
  }
}

TEST(SparsityController, HysteresisHoldsNearEqualAllocations) {
  const std::vector<std::size_t> sizes = {4096, 4096, 4096};
  core::CompressionConfig compression = adaptive_compression(2.0);
  compression.adaptive.hysteresis = 0.25;
  compression.adaptive.interval_steps = 1;
  core::SparsityController controller(sizes, compression);

  // A steady stream commits one allocation...
  const std::vector<double> steady = {3.0, 2.0, 1.0};
  for (int t = 0; t < 32; ++t) controller.observe_push(steady);
  std::vector<std::size_t> committed;
  for (std::size_t l = 0; l < sizes.size(); ++l)
    committed.push_back(controller.keep(l));

  // ...and small mass wobbles inside the dead-band leave it untouched.
  for (int t = 0; t < 16; ++t) {
    const double eps = (t % 2 == 0) ? 1.02 : 0.98;
    const std::vector<double> wobble = {3.0 * eps, 2.0 / eps, 1.0 * eps};
    controller.observe_push(wobble);
    for (std::size_t l = 0; l < sizes.size(); ++l)
      EXPECT_EQ(controller.keep(l), committed[l]) << "wobble " << t;
  }

  // A persistent large shift does move the allocation.
  const std::vector<double> shifted = {1.0, 2.0, 12.0};
  for (int t = 0; t < 64; ++t) controller.observe_push(shifted);
  EXPECT_GT(controller.keep(2), committed[2]);
}

TEST(SparsityController, StalenessAndDensityDampTowardUniform) {
  const std::vector<std::size_t> sizes = {4096, 4096};
  core::CompressionConfig compression = adaptive_compression(2.0);
  compression.adaptive.hysteresis = 0.0;
  compression.adaptive.interval_steps = 1;
  const std::vector<double> skewed = {10.0, 1.0};

  // Fresh replies, sparse: allocation follows the mass skew.
  core::SparsityController fresh(sizes, compression);
  for (int t = 0; t < 64; ++t) {
    fresh.observe_reply(0.0, 0.01);
    fresh.observe_push(skewed);
  }
  // Very stale, near-dense replies: allocation stays close to uniform.
  core::SparsityController stale(sizes, compression);
  for (int t = 0; t < 64; ++t) {
    stale.observe_reply(200.0, 1.0);
    stale.observe_push(skewed);
  }
  const auto uniform = sparse::keep_count(sizes[0], 2.0);
  EXPECT_GT(fresh.keep(0) - uniform, stale.keep(0) - uniform);
  EXPECT_LE(stale.keep(0), uniform + uniform / 2);
}

TEST(SparsityController, MinRatioFloorIsClampedToBaseRatio) {
  std::vector<std::size_t> sizes = {4096, 2048};
  core::CompressionConfig compression = adaptive_compression(1.0);
  compression.adaptive.min_ratio_percent = 5.0;  // above base: clamp to base
  core::SparsityController controller(sizes, compression);
  EXPECT_DOUBLE_EQ(controller.min_ratio_percent(), 1.0);
  std::uint64_t floors = 0;
  for (std::size_t l = 0; l < sizes.size(); ++l)
    floors += sparse::keep_count(sizes[l], controller.min_ratio_percent());
  EXPECT_LE(floors, controller.keep_budget());
}

// ---- exact-k selection ------------------------------------------------------

TEST(SelectK, MatchesRatioSelectAndHonorsExactCounts) {
  sparse::SparsifyWorkspace ws;
  util::Rng rng(7);
  std::vector<float> values(5000);
  for (auto& v : values) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  const std::span<const float> view{values.data(), values.size()};

  // select_k(keep_count(n, R)) == select(R) for any ratio.
  for (double ratio : {0.5, 2.0, 10.0, 100.0}) {
    const auto by_ratio = ws.select(view, ratio);
    const auto by_k =
        ws.select_k(view, sparse::keep_count(values.size(), ratio));
    EXPECT_EQ(by_ratio.key, by_k.key) << ratio;
    EXPECT_EQ(by_ratio.kept, by_k.kept) << ratio;
  }
  // Exact counts that no percentage round-trips to (e.g. k = 777).
  for (std::size_t k : {std::size_t{1}, std::size_t{777}, std::size_t{4999}}) {
    const auto sel = ws.select_k(view, k);
    EXPECT_EQ(sel.kept, k);
    sparse::LayerChunk out;
    std::vector<float> scratch = values;
    ws.compact_copy(0, {scratch.data(), scratch.size()}, sel, out);
    EXPECT_EQ(out.nnz(), k);
  }
  // k clamps: 0 -> 1, > n -> keep-everything semantics.
  EXPECT_EQ(ws.select_k(view, 0).kept, 1u);
  EXPECT_EQ(ws.select_k(view, values.size() + 5).key, 0u);
  EXPECT_EQ(ws.select_k({}, 3).kept, 0u);
}

// ---- end-to-end -------------------------------------------------------------

core::TrainConfig small_adaptive_config() {
  core::TrainConfig config;
  config.method = core::Method::kDGSAdaptive;
  config.num_workers = 2;
  config.batch_size = 16;
  config.epochs = 2;
  config.lr = 0.02;
  config.seed = 71;
  config.compression.ratio_percent = 5.0;
  config.compression.min_sparsify_size = 64;
  config.compression.adaptive.interval_steps = 2;
  return config;
}

data::SyntheticDataset small_data() {
  data::SyntheticSpec spec = data::SyntheticSpec::synth_cifar(31);
  spec.num_train = 256;
  spec.num_test = 128;
  return data::make_synthetic(spec);
}

void check_adaptive_run(const core::RunResult& result) {
  EXPECT_GT(result.final_test_accuracy, 0.0);
  EXPECT_GT(result.ledger.adaptive.decisions, 0u);
  EXPECT_GT(result.ledger.adaptive.keep_budget, 0u);
  EXPECT_DOUBLE_EQ(result.ledger.adaptive.base_ratio_percent, 5.0);
  EXPECT_FALSE(result.ledger.adaptive.trajectory.empty());
  EXPECT_GT(result.adaptive_ratio_hist.count, 0u);
  // Every committed trajectory ratio respects the floor.
  for (const auto& point : result.ledger.adaptive.trajectory)
    for (double r : point.ratios) {
      EXPECT_GE(r, result.ledger.adaptive.min_ratio_percent - 1e-9);
      EXPECT_LE(r, 100.0 + 1e-9);
    }
}

TEST(AdaptiveEndToEnd, RunsOnSimThreadAndSyncEngines) {
  const auto data = small_data();
  const nn::ModelSpec spec = nn::ModelSpec::mlp(
      data.train->feature_dim(), {32}, data.train->num_classes());
  const core::TrainConfig config = small_adaptive_config();

  const auto sim = core::SimEngine(spec, data.train, data.test, config).run();
  const auto thread =
      core::ThreadEngine(spec, data.train, data.test, config).run();
  const auto sync =
      core::SyncEngine(spec, data.train, data.test, config).run();
  check_adaptive_run(sim);
  check_adaptive_run(thread);
  check_adaptive_run(sync);
  EXPECT_EQ(sim.ledger.method, "DGS-Adaptive");
}

TEST(AdaptiveEndToEnd, RunsOnProcessEngineThreadTransport) {
  const auto data = small_data();
  const nn::ModelSpec spec = nn::ModelSpec::mlp(
      data.train->feature_dim(), {32}, data.train->num_classes());
  core::TrainConfig config = small_adaptive_config();
  config.transport = core::TransportKind::kThread;
  config.deterministic_service = true;

  const auto result =
      core::ProcessEngine(spec, data.train, data.test, config).run();
  check_adaptive_run(result);
}

TEST(AdaptiveEndToEnd, SimEngineIsDeterministicIncludingTrajectory) {
  const auto data = small_data();
  const nn::ModelSpec spec = nn::ModelSpec::mlp(
      data.train->feature_dim(), {32}, data.train->num_classes());
  const core::TrainConfig config = small_adaptive_config();

  const auto a = core::SimEngine(spec, data.train, data.test, config).run();
  const auto b = core::SimEngine(spec, data.train, data.test, config).run();
  ASSERT_EQ(a.final_model.size(), b.final_model.size());
  for (std::size_t i = 0; i < a.final_model.size(); ++i)
    ASSERT_EQ(a.final_model[i], b.final_model[i]) << "param " << i;

  ASSERT_EQ(a.ledger.adaptive.trajectory.size(),
            b.ledger.adaptive.trajectory.size());
  for (std::size_t i = 0; i < a.ledger.adaptive.trajectory.size(); ++i) {
    EXPECT_EQ(a.ledger.adaptive.trajectory[i].step,
              b.ledger.adaptive.trajectory[i].step);
    EXPECT_EQ(a.ledger.adaptive.trajectory[i].ratios,
              b.ledger.adaptive.trajectory[i].ratios);
  }
  // The ratio schedule survives a ledger JSON round-trip bit-exactly
  // (to_json emits shortest round-trip doubles).
  obs::RunLedger back;
  ASSERT_TRUE(obs::RunLedger::from_json(a.ledger.to_json(), &back));
  ASSERT_EQ(back.adaptive.trajectory.size(),
            a.ledger.adaptive.trajectory.size());
  for (std::size_t i = 0; i < back.adaptive.trajectory.size(); ++i)
    EXPECT_EQ(back.adaptive.trajectory[i].ratios,
              a.ledger.adaptive.trajectory[i].ratios);
}

TEST(AdaptiveEndToEnd, MatchesFixedDgsBytesBudget) {
  const auto data = small_data();
  const nn::ModelSpec spec = nn::ModelSpec::mlp(
      data.train->feature_dim(), {32}, data.train->num_classes());
  core::TrainConfig config = small_adaptive_config();

  const auto adaptive =
      core::SimEngine(spec, data.train, data.test, config).run();
  config.method = core::Method::kDGS;
  const auto fixed = core::SimEngine(spec, data.train, data.test, config).run();

  // Same pushes, same budget: the adaptive run never ships more upward
  // bytes than fixed-R DGS (the budget invariant, end to end). Allow the
  // tiny slack of one COO entry per layer per push for rounding.
  ASSERT_GT(fixed.bytes.upward_bytes, 0u);
  EXPECT_LE(adaptive.bytes.upward_bytes,
            fixed.bytes.upward_bytes + fixed.bytes.upward_messages * 8 * 4);
}

}  // namespace
}  // namespace dgs
