// Property-style sweeps (TEST_P) over ratios, momentum values, worker
// counts and methods: the paper's invariants must hold across the whole
// parameter space, not just at the defaults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "comm/fault.h"
#include "comm/framing.h"
#include "core/layered.h"
#include "core/optimizer.h"
#include "core/server.h"
#include "core/session.h"
#include "core/worker.h"
#include "data/synthetic.h"
#include "sparse/codec.h"
#include "sparse/compressor.h"
#include "sparse/topk.h"
#include "util/rng.h"

namespace {

using namespace dgs;
using core::Method;


// ----------------------------------- framing reassembly across every codec

// A frame split at arbitrary byte boundaries must reassemble into a Message
// byte-identical to a whole-frame decode, for every registered payload
// format. This is the property the socket transport's correctness rests on:
// the kernel splits reads wherever it pleases, and the payload that comes
// out of FrameDecoder must be the exact bytes the codec encoder produced.
class FramingReassemblySweep : public ::testing::TestWithParam<sparse::Codec> {
};

TEST_P(FramingReassemblySweep, SplitFeedMatchesWholeDecodeByteForByte) {
  const sparse::Codec codec = GetParam();
  util::Rng rng(0xFA11 + static_cast<std::uint64_t>(codec));

  // A realistic two-layer update, transform()ed so the payload carries
  // exactly what the decoder reconstructs.
  sparse::SparseUpdate update;
  for (std::uint32_t layer = 0; layer < 2; ++layer) {
    sparse::LayerChunk chunk;
    chunk.layer = layer;
    chunk.dense_size = 384;
    for (std::uint32_t i = 0; i < chunk.dense_size; i += 1 + rng.below(9)) {
      chunk.idx.push_back(i);
      chunk.val.push_back(static_cast<float>(rng.normal(0, 1)));
    }
    update.layers.push_back(std::move(chunk));
  }
  // The ternary stages only pack — they require values already quantized
  // to +/- one scale per layer (the worker algorithm does that in
  // production), so pre-quantize here.
  if (codec == sparse::Codec::kTernary ||
      codec == sparse::Codec::kSparseTernary)
    for (auto& chunk : update.layers)
      for (auto& v : chunk.val) v = v < 0 ? -0.5f : 0.5f;
  const auto& stage = sparse::compressor_for(codec);
  for (auto& chunk : update.layers) stage.transform(chunk);

  comm::Message msg;
  msg.kind = comm::MessageKind::kGradientPush;
  msg.worker_id = 3;
  msg.seq = 17;
  msg.attempt = 1;
  msg.worker_step = 5;
  msg.server_step = 11;
  msg.epoch = 2;
  msg.loss = 0.625f;
  msg.density = 0.25f;
  msg.payload = stage.encode(update);

  std::vector<std::uint8_t> wire(comm::framed_size(msg));
  comm::encode_frame_header(msg, /*send_ns=*/12345, wire.data());
  std::memcpy(wire.data() + comm::kFrameHeaderBytes, msg.payload.data(),
              msg.payload.size());

  // Reference: whole-buffer decode.
  comm::Message whole;
  std::uint64_t whole_ns = 0;
  {
    comm::FrameDecoder decoder;
    decoder.feed(wire);
    ASSERT_TRUE(decoder.next(whole, &whole_ns));
  }
  ASSERT_EQ(whole.payload, msg.payload);
  ASSERT_EQ(whole_ns, 12345u);

  auto check_identical = [&](const comm::Message& got, std::uint64_t ns) {
    ASSERT_EQ(got.kind, msg.kind);
    ASSERT_EQ(got.worker_id, msg.worker_id);
    ASSERT_EQ(got.seq, msg.seq);
    ASSERT_EQ(got.attempt, msg.attempt);
    ASSERT_EQ(got.worker_step, msg.worker_step);
    ASSERT_EQ(got.server_step, msg.server_step);
    ASSERT_EQ(got.epoch, msg.epoch);
    ASSERT_EQ(got.loss, msg.loss);
    ASSERT_EQ(got.density, msg.density);
    ASSERT_EQ(got.payload, msg.payload);
    ASSERT_EQ(ns, 12345u);
    // And the payload still decodes to the same per-layer segments.
    const auto segments = sparse::decode_any(got.payload);
    const auto reference = sparse::decode_any(msg.payload);
    ASSERT_EQ(segments.size(), reference.size());
  };

  // Fixed chunk sizes that straddle the header boundary, then random
  // chunkings across multiple back-to-back copies of the frame.
  for (const std::size_t chunk_size :
       {std::size_t{1}, std::size_t{3}, std::size_t{13},
        comm::kFrameHeaderBytes - 1, comm::kFrameHeaderBytes,
        comm::kFrameHeaderBytes + 1, wire.size() - 1}) {
    comm::FrameDecoder decoder;
    for (std::size_t off = 0; off < wire.size(); off += chunk_size) {
      const std::size_t n = std::min(chunk_size, wire.size() - off);
      decoder.feed({wire.data() + off, n});
    }
    comm::Message got;
    std::uint64_t ns = 0;
    ASSERT_TRUE(decoder.next(got, &ns)) << "chunk size " << chunk_size;
    check_identical(got, ns);
    ASSERT_FALSE(decoder.next(got));
  }

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::uint8_t> stream;
    const int copies = 3;
    for (int c = 0; c < copies; ++c)
      stream.insert(stream.end(), wire.begin(), wire.end());
    comm::FrameDecoder decoder;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.below(97), stream.size() - off);
      decoder.feed({stream.data() + off, n});
      off += n;
    }
    for (int c = 0; c < copies; ++c) {
      comm::Message got;
      std::uint64_t ns = 0;
      ASSERT_TRUE(decoder.next(got, &ns)) << "copy " << c;
      check_identical(got, ns);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, FramingReassemblySweep,
    ::testing::Values(sparse::Codec::kCoo, sparse::Codec::kDense,
                      sparse::Codec::kTernary, sparse::Codec::kSparseTernary,
                      sparse::Codec::kQcoo8, sparse::Codec::kQcoo4,
                      sparse::Codec::kSbc),
    [](const auto& info) {
      std::string name = sparse::codec_name(info.param);
      for (auto& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// --------------------------------------------------------- top-k ratio sweep

class TopKRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(TopKRatioSweep, KeptFractionMatchesRatio) {
  const double ratio = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(ratio * 1000) + 1);
  std::vector<float> v(5000);
  for (auto& x : v) x = rng.normal(0, 1);
  const float thr = sparse::topk_threshold(v, ratio);
  const std::size_t kept = sparse::count_above(v, thr);
  EXPECT_EQ(kept, sparse::keep_count(v.size(), ratio));
}

INSTANTIATE_TEST_SUITE_P(Ratios, TopKRatioSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0, 10.0, 25.0, 50.0,
                                           75.0, 99.0, 100.0));

// ----------------------------------------- SAMomentum update-rule invariant

// For every step and coordinate: u_after == candidate (if |candidate| >= thr)
// else candidate / m, where candidate = m*u_before + lr*g (Eq. 14a/15).
class SamInvariantSweep : public ::testing::TestWithParam<std::tuple<float, double>> {};

TEST_P(SamInvariantSweep, Eq15HoldsEveryStep) {
  const auto [m, ratio] = GetParam();
  const float lr = 0.1f;
  const std::size_t n = 64;
  core::CompressionConfig compression;
  compression.ratio_percent = ratio;
  core::SAMomentum alg({n}, compression, m);
  util::Rng rng(7);

  std::vector<float> u_before(n, 0.0f);
  for (int step = 0; step < 25; ++step) {
    std::vector<float> g(n);
    for (auto& x : g) x = rng.normal(0, 1);

    std::vector<float> candidate(n);
    for (std::size_t i = 0; i < n; ++i) candidate[i] = m * u_before[i] + lr * g[i];
    const float thr = sparse::topk_threshold(candidate, ratio);

    const auto update = alg.step({std::span<const float>{g.data(), n}}, lr, 0);
    const auto& u_after = alg.velocity()[0];
    const auto sent = sparse::densify(update.layers[0]);

    for (std::size_t i = 0; i < n; ++i) {
      if (std::fabs(candidate[i]) >= thr && candidate[i] != 0.0f) {
        ASSERT_FLOAT_EQ(u_after[i], candidate[i]) << "step " << step;
        ASSERT_FLOAT_EQ(sent[i], candidate[i]);
      } else {
        ASSERT_FLOAT_EQ(u_after[i], candidate[i] / m) << "step " << step;
        ASSERT_FLOAT_EQ(sent[i], 0.0f);
      }
    }
    u_before.assign(u_after.begin(), u_after.end());
  }
}

INSTANTIATE_TEST_SUITE_P(
    MomentumAndRatio, SamInvariantSweep,
    ::testing::Combine(::testing::Values(0.3f, 0.5f, 0.7f, 0.9f),
                       ::testing::Values(1.0, 10.0, 50.0)));

// ------------------------------------------------- GD mass conservation sweep

class GdConservationSweep : public ::testing::TestWithParam<double> {};

TEST_P(GdConservationSweep, ResidualPlusSentEqualsTotal) {
  const double ratio = GetParam();
  core::CompressionConfig compression;
  compression.ratio_percent = ratio;
  core::GradientDropping alg({40}, compression);
  util::Rng rng(11);
  const float lr = 0.05f;
  std::vector<double> total(40, 0.0), sent(40, 0.0);
  for (int step = 0; step < 40; ++step) {
    std::vector<float> g(40);
    for (auto& x : g) x = rng.normal(0, 1);
    for (std::size_t i = 0; i < 40; ++i) total[i] += lr * g[i];
    const auto u = alg.step({std::span<const float>{g.data(), 40}}, lr, 0);
    const auto dense = sparse::densify(u.layers[0]);
    for (std::size_t i = 0; i < 40; ++i) sent[i] += dense[i];
  }
  for (std::size_t i = 0; i < 40; ++i)
    EXPECT_NEAR(sent[i] + alg.residual()[0][i], total[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Ratios, GdConservationSweep,
                         ::testing::Values(1.0, 5.0, 20.0, 100.0));

// --------------------------------------------------- Eq. 5 identity sweep

// Worker model == server model after every exchange, for every sparsifying
// method and several worker counts (no secondary compression).
class Eq5Sweep
    : public ::testing::TestWithParam<std::tuple<Method, std::size_t>> {};

TEST_P(Eq5Sweep, LocalModelEqualsGlobalAfterReply) {
  const auto [method, num_workers] = GetParam();
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(5);
  dspec.num_train = 256;
  dspec.num_test = 64;
  const auto data = data::make_synthetic(dspec);
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {16}, data.train->num_classes());

  core::TrainConfig config;
  config.method = method;
  config.num_workers = num_workers;
  config.batch_size = 8;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.seed = 13;

  const auto theta0 = core::initial_parameters(spec, config.seed);
  nn::ModulePtr probe = spec.build();
  core::ParameterServer server(nn::param_layer_sizes(probe->parameters()),
                               theta0, {.num_workers = num_workers});

  std::vector<std::unique_ptr<core::Worker>> workers;
  for (std::size_t k = 0; k < num_workers; ++k)
    workers.push_back(
        std::make_unique<core::Worker>(k, spec, data.train, config, theta0));

  util::Rng order(17);
  for (int iter = 0; iter < 24; ++iter) {
    const auto k = static_cast<std::size_t>(order.below(num_workers));
    auto it = workers[k]->compute_and_pack();
    const auto reply = server.handle_push(it.push);
    workers[k]->apply_model_diff(reply);
    const auto global = server.global_model_flat();
    const auto local = workers[k]->model_flat();
    // Equal up to float32 summation-order rounding (see the integration
    // test's comment on Eq. 5 and associativity).
    for (std::size_t i = 0; i < global.size(); ++i)
      ASSERT_NEAR(global[i], local[i], 1e-4)
          << core::method_name(method) << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndWorkers, Eq5Sweep,
    ::testing::Combine(::testing::Values(Method::kASGD, Method::kGDAsync,
                                         Method::kDGCAsync, Method::kDGS),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{5})),
    [](const auto& info) {
      std::string n = core::method_name(std::get<0>(info.param));
      for (auto& ch : n)
        if (ch == '-') ch = '_';
      return n + "_w" + std::to_string(std::get<1>(info.param));
    });

// -------------------------------------------- secondary compression bound

// With secondary compression at ratio R2, every reply's per-layer nnz is
// bounded by keep_count(layer, R2) (+ ties), regardless of backlog size.
class SecondaryCompressionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SecondaryCompressionSweep, ReplyNnzBounded) {
  const double r2 = GetParam();
  const std::vector<std::size_t> sizes{128};
  core::ServerOptions options;
  options.num_workers = 2;
  options.secondary_compression = true;
  options.secondary_ratio_percent = r2;
  core::ParameterServer server(sizes, std::vector<float>(128, 0.0f), options);

  util::Rng rng(23);
  for (int iter = 0; iter < 30; ++iter) {
    sparse::SparseUpdate u;
    sparse::LayerChunk c;
    c.layer = 0;
    c.dense_size = 128;
    for (std::uint32_t i = 0; i < 128; i += 4) {
      c.idx.push_back(i);
      c.val.push_back(rng.normal(0, 1));
    }
    u.layers.push_back(std::move(c));
    comm::Message push;
    push.kind = comm::MessageKind::kGradientPush;
    push.worker_id = static_cast<std::int32_t>(iter % 2);
    push.payload = sparse::encode(u);
    const auto reply = server.handle_push(push);
    const auto g = sparse::decode(reply.payload);
    // Allow ties: bound by 2x the nominal keep count.
    EXPECT_LE(g.layers[0].nnz(), 2 * sparse::keep_count(128, r2))
        << "iteration " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, SecondaryCompressionSweep,
                         ::testing::Values(1.0, 5.0, 10.0, 25.0));

// ---------------------------------------------- determinism across methods

class DeterminismSweep : public ::testing::TestWithParam<Method> {};

TEST_P(DeterminismSweep, IdenticalRunsProduceIdenticalResults) {
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(29);
  dspec.num_train = 256;
  dspec.num_test = 64;
  const auto data = data::make_synthetic(dspec);
  const auto spec =
      nn::ModelSpec::mlp(data.train->feature_dim(), {16}, data.train->num_classes());

  core::TrainConfig config;
  config.method = GetParam();
  config.num_workers = GetParam() == Method::kMSGD ? 1 : 3;
  config.batch_size = 16;
  config.epochs = 2;
  config.lr = 0.02;
  config.seed = 31;

  const auto a = core::SimEngine(spec, data.train, data.test, config).run();
  const auto b = core::SimEngine(spec, data.train, data.test, config).run();
  EXPECT_DOUBLE_EQ(a.final_test_accuracy, b.final_test_accuracy);
  EXPECT_EQ(a.bytes.upward_bytes, b.bytes.upward_bytes);
  EXPECT_EQ(a.bytes.downward_bytes, b.bytes.downward_bytes);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, DeterminismSweep,
                         ::testing::Values(Method::kMSGD, Method::kASGD,
                                           Method::kGDAsync, Method::kDGCAsync,
                                           Method::kDGS),
                         [](const auto& info) {
                           std::string n = core::method_name(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// ---------------------------------------- reply-drop conservation sweep

// Fault-model bookkeeping invariant (DESIGN.md §5/§11): with faults only on
// replies, every reply the server *builds* is charged to v_k whether or not
// it arrives. So for each worker, v_k decomposes exactly into the G_k
// payloads the worker applied plus the G_k payloads the fault plan dropped
// on the way down — nothing is double-charged, nothing goes missing.
class ReplyDropConservationSweep : public ::testing::TestWithParam<double> {};

namespace detail {

/// Decode a model-diff / full-model payload into a flat dense vector.
std::vector<float> dense_reply(const sparse::Bytes& payload,
                               const std::vector<std::size_t>& sizes) {
  std::size_t total = 0;
  std::vector<std::size_t> offsets;
  for (std::size_t s : sizes) {
    offsets.push_back(total);
    total += s;
  }
  std::vector<float> flat(total, 0.0f);
  if (sparse::is_sparse_payload(payload)) {
    const auto update = sparse::decode(payload);
    for (const auto& chunk : update.layers) {
      const auto dense = sparse::densify(chunk);
      std::copy(dense.begin(), dense.end(), flat.begin() + offsets[chunk.layer]);
    }
  } else {
    const auto update = sparse::decode_dense(payload);
    for (const auto& layer : update.layers)
      std::copy(layer.values.begin(), layer.values.end(),
                flat.begin() + offsets[layer.layer]);
  }
  return flat;
}

}  // namespace detail

TEST_P(ReplyDropConservationSweep, SentTrackerEqualsAppliedPlusDropped) {
  const double drop_pct = GetParam();
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(59);
  dspec.num_train = 256;
  dspec.num_test = 64;
  const auto data = data::make_synthetic(dspec);
  const auto spec = nn::ModelSpec::mlp(data.train->feature_dim(), {16},
                                       data.train->num_classes());

  core::TrainConfig config;
  config.method = Method::kDGS;
  config.num_workers = 2;
  config.batch_size = 8;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.seed = 61;

  const auto theta0 = core::initial_parameters(spec, config.seed);
  nn::ModulePtr probe = spec.build();
  const auto sizes = nn::param_layer_sizes(probe->parameters());
  core::ParameterServer server(sizes, theta0, {.num_workers = 2});

  comm::FaultConfig fc;
  fc.seed = static_cast<std::uint64_t>(drop_pct) * 7919 + 3;
  fc.drop_pct = drop_pct;
  fc.faults_on_pushes = false;  // pushes are reliable; only replies fault
  comm::FaultPlan plan(fc);

  std::vector<std::unique_ptr<core::Worker>> workers;
  for (std::size_t k = 0; k < 2; ++k)
    workers.push_back(
        std::make_unique<core::Worker>(k, spec, data.train, config, theta0));

  const std::size_t numel = theta0.size();
  std::vector<std::vector<double>> applied(2, std::vector<double>(numel, 0.0));
  std::vector<std::vector<double>> dropped(2, std::vector<double>(numel, 0.0));
  std::uint64_t seq[2] = {0, 0};
  int drops_seen = 0;

  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t k = static_cast<std::size_t>(iter % 2);
    auto it = workers[k]->compute_and_pack();
    it.push.seq = ++seq[k];
    const auto reply = server.handle_push(it.push);
    const auto g = detail::dense_reply(reply.payload, sizes);
    if (plan.classify(comm::FaultDirection::kReply, k, reply.seq, 0) ==
        comm::FaultAction::kDrop) {
      // The reply is lost, but v_k already advanced by it: the worker keeps
      // training on a stale model (that is the leak leases later bound).
      for (std::size_t i = 0; i < numel; ++i) dropped[k][i] += g[i];
      ++drops_seen;
    } else {
      workers[k]->apply_model_diff(reply);
      for (std::size_t i = 0; i < numel; ++i) applied[k][i] += g[i];
    }
  }
  ASSERT_GT(drops_seen, 0) << "schedule never dropped a reply; weak test";

  for (std::size_t k = 0; k < 2; ++k) {
    const auto v = core::layered_flatten(server.sent_accumulator(k));
    ASSERT_EQ(v.size(), numel);
    for (std::size_t i = 0; i < numel; ++i)
      ASSERT_NEAR(v[i], applied[k][i] + dropped[k][i], 1e-4)
          << "worker " << k << " coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(DropRates, ReplyDropConservationSweep,
                         ::testing::Values(10.0, 25.0, 50.0));

// ------------------------------------------------------ codec size sweep

class CodecSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecSizeSweep, RoundTripAndSizeFormula) {
  const std::size_t nnz = GetParam();
  util::Rng rng(nnz + 41);
  sparse::SparseUpdate u;
  sparse::LayerChunk c;
  c.layer = 2;
  c.dense_size = static_cast<std::uint32_t>(4 * nnz + 8);
  for (std::size_t i = 0; i < nnz; ++i) {
    c.idx.push_back(static_cast<std::uint32_t>(4 * i));
    c.val.push_back(rng.normal(0, 1));
  }
  u.layers.push_back(c);
  const auto bytes = sparse::encode(u);
  EXPECT_EQ(bytes.size(), 8u + 12u + nnz * 8u);
  const auto d = sparse::decode(bytes);
  EXPECT_EQ(d.layers[0].idx, u.layers[0].idx);
  EXPECT_EQ(d.layers[0].val, u.layers[0].val);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CodecSizeSweep,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{10}, std::size_t{1000},
                                           std::size_t{10000}));

}  // namespace
