// Unit tests for the util substrate: RNG, math kernels, tables, flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/gemm.h"
#include "util/logging.h"
#include "util/math_kernels.h"
#include "util/parallel_for.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace dgs::util;

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng root(7);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root1(7), root2(7);
  Rng a = root1.fork(3), b = root2.fork(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsInRangeAndHitsAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(29);
  shuffle(v.data(), v.size(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // Overwhelmingly likely to actually move something.
  std::vector<int> identity(100);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

// ---------------------------------------------------------------- logging

std::mutex g_log_mutex;
std::vector<std::string> g_log_lines;

void capture_sink(LogLevel /*level*/, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_lines.push_back(line);
}

/// Installs the capture sink for one test and restores stderr + the default
/// threshold afterwards, so logging tests cannot leak into each other.
class LogCapture {
 public:
  LogCapture() {
    {
      std::lock_guard<std::mutex> lock(g_log_mutex);
      g_log_lines.clear();
    }
    set_log_sink(&capture_sink);
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }
  [[nodiscard]] std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    return g_log_lines;
  }
};

TEST(Logging, MacroFiltersByThresholdWithoutEvaluating) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  DGS_LOG(kDebug) << "hidden " << ++evaluations;
  DGS_LOG(kInfo) << "hidden " << ++evaluations;
  // Below-threshold statements must not even evaluate their operands (the
  // early-out is what makes hot-path logging free).
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(capture.lines().empty());

  DGS_LOG(kWarn) << "visible " << ++evaluations;
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[WARN] visible 1");
  EXPECT_EQ(evaluations, 1);
}

TEST(Logging, MacroIsDanglingElseSafe) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  bool else_taken = false;
  // If the macro expanded to a naked `if`, the `else` below would bind to
  // it and this would not compile / would misbehave.
  if (false)
    DGS_LOG(kError) << "never";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
  EXPECT_TRUE(capture.lines().empty());
}

TEST(Logging, ConcurrentWritersEmitIntactLines) {
  LogCapture capture;
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 8, kPerThread = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        DGS_LOG(kInfo) << "writer " << t << " msg " << i;
    });
  for (auto& w : writers) w.join();

  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Every line arrived whole: no interleaved fragments, no duplicates.
  std::set<std::string> seen(lines.begin(), lines.end());
  EXPECT_EQ(seen.size(), lines.size());
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i) {
      const std::string expected =
          "[INFO] writer " + std::to_string(t) + " msg " + std::to_string(i);
      ASSERT_TRUE(seen.count(expected)) << "lost or mangled: " << expected;
    }
}

TEST(Logging, SinkSwapIsSafeWhileLogging) {
  LogCapture capture;
  set_log_level(LogLevel::kInfo);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) DGS_LOG(kInfo) << "spin " << i++;
  });
  // Hammer install/clear while the writer logs: each line must go entirely
  // to one destination (TSan-checked via scripts/run_tsan.sh).
  for (int i = 0; i < 500; ++i) {
    set_log_level(LogLevel::kError);  // keep the stderr window quiet
    set_log_sink(nullptr);
    set_log_sink(&capture_sink);
    set_log_level(LogLevel::kInfo);
  }
  stop.store(true);
  writer.join();
  for (const auto& line : capture.lines())
    EXPECT_EQ(line.rfind("[INFO] spin ", 0), 0u) << "mangled line: " << line;
}

// ---------------------------------------------------------------- kernels

TEST(MathKernels, Axpy) {
  std::vector<float> x{1, 2, 3}, y{10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12);
  EXPECT_FLOAT_EQ(y[1], 24);
  EXPECT_FLOAT_EQ(y[2], 36);
}

TEST(MathKernels, Axpby) {
  std::vector<float> x{1, 2}, y{4, 8};
  axpby(3.0f, x, 0.5f, y);
  EXPECT_FLOAT_EQ(y[0], 5);   // 3*1 + 0.5*4
  EXPECT_FLOAT_EQ(y[1], 10);  // 3*2 + 0.5*8
}

TEST(MathKernels, ScaleFillCopy) {
  std::vector<float> x{1, 2, 3};
  scale(3.0f, x);
  EXPECT_FLOAT_EQ(x[2], 9);
  std::vector<float> y(3);
  copy(x, y);
  EXPECT_EQ(x, y);
  fill(7.0f, y);
  EXPECT_FLOAT_EQ(y[0], 7);
}

TEST(MathKernels, DotNrm2SumAsumAmax) {
  std::vector<float> x{3, -4};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(sum(x), -1.0);
  EXPECT_DOUBLE_EQ(asum(x), 7.0);
  EXPECT_FLOAT_EQ(amax(x), 4.0f);
  EXPECT_FLOAT_EQ(amax(std::span<const float>{}), 0.0f);
}

TEST(MathKernels, AddSubMulElementwise) {
  std::vector<float> x{1, 2, 3}, y{4, 5, 6}, z(3);
  add(x, y, z);
  EXPECT_FLOAT_EQ(z[2], 9);
  sub(x, y, z);
  EXPECT_FLOAT_EQ(z[0], -3);
  mul(x, y, z);
  EXPECT_FLOAT_EQ(z[1], 10);
}

// Naive reference GEMM used to validate the blocked kernels.
void ref_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
              const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t p = 0; p < k; ++p) acc += double(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = float(acc);
    }
}

TEST(MathKernels, GemmMatchesReference) {
  Rng rng(31);
  const std::size_t m = 17, k = 23, n = 13;
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
  for (auto& v : a) v = rng.normal(0, 1);
  for (auto& v : b) v = rng.normal(0, 1);
  gemm(m, k, n, a.data(), b.data(), c.data(), false);
  ref_gemm(m, k, n, a.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

TEST(MathKernels, GemmAccumulates) {
  const std::size_t m = 2, k = 2, n = 2;
  std::vector<float> a{1, 0, 0, 1}, b{1, 2, 3, 4}, c{10, 10, 10, 10};
  gemm(m, k, n, a.data(), b.data(), c.data(), true);
  EXPECT_FLOAT_EQ(c[0], 11);
  EXPECT_FLOAT_EQ(c[3], 14);
}

TEST(MathKernels, GemmAtMatchesReference) {
  Rng rng(37);
  const std::size_t m = 9, k = 11, n = 7;
  // A stored [k x m]; want C = A^T * B.
  std::vector<float> a(k * m), b(k * n), c(m * n), at(m * k), ref(m * n);
  for (auto& v : a) v = rng.normal(0, 1);
  for (auto& v : b) v = rng.normal(0, 1);
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t i = 0; i < m; ++i) at[i * k + p] = a[p * m + i];
  gemm_at(m, k, n, a.data(), b.data(), c.data(), false);
  ref_gemm(m, k, n, at.data(), b.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

TEST(MathKernels, GemmBtMatchesReference) {
  Rng rng(41);
  const std::size_t m = 8, k = 10, n = 6;
  // B stored [n x k]; want C = A * B^T.
  std::vector<float> a(m * k), b(n * k), c(m * n), bt(k * n), ref(m * n);
  for (auto& v : a) v = rng.normal(0, 1);
  for (auto& v : b) v = rng.normal(0, 1);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t p = 0; p < k; ++p) bt[p * n + j] = b[j * k + p];
  gemm_bt(m, k, n, a.data(), b.data(), c.data(), false);
  ref_gemm(m, k, n, a.data(), bt.data(), ref.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

// ------------------------------------------------- packed GEMM vs. oracle
//
// The float-accumulation policy (math_kernels.h): every variant is pinned
// to the double-precision reference:: oracle under the stated per-element
// inner-product bound tol(i,j) = 16 * eps_f32 * sqrt(k) * sum_p |a*b|.
// The constant absorbs the k-blocked summation-order difference; sqrt(k)
// reflects the random-sign error growth of a k-term float reduction.

float gemm_tolerance(std::size_t k, double abs_sum) {
  const double eps = std::numeric_limits<float>::epsilon();
  return static_cast<float>(16.0 * eps * std::sqrt(static_cast<double>(k)) *
                                abs_sum +
                            1e-12);
}

// Check C (from one of the packed variants) against the oracle result,
// where element (i,j) of `abs_sums` is sum_p |a_ip * b_pj|.
void expect_gemm_close(std::size_t m, std::size_t k, std::size_t n,
                       const std::vector<float>& c,
                       const std::vector<float>& oracle,
                       const std::vector<double>& abs_sums) {
  for (std::size_t i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c[i], oracle[i], gemm_tolerance(k, abs_sums[i]))
        << "element " << i / n << "," << i % n;
  }
}

struct GemmProblem {
  std::size_t m, k, n;
  std::vector<float> a;   // layout depends on variant
  std::vector<float> b;   // layout depends on variant
};

GemmProblem make_problem(std::size_t m, std::size_t k, std::size_t n,
                         std::size_t a_elems, std::size_t b_elems,
                         std::uint64_t seed) {
  GemmProblem prob{m, k, n, std::vector<float>(a_elems),
                   std::vector<float>(b_elems)};
  Rng rng(seed);
  for (auto& v : prob.a) v = rng.normal(0, 1);
  for (auto& v : prob.b) v = rng.normal(0, 1);
  return prob;
}

// Exercises tile tails (m % MR, n % NR) and multiple k-blocks (k > KC).
constexpr std::size_t kOracleShapes[][3] = {
    {64, 576, 96},  // gate-like: two k-blocks, aligned m
    {17, 300, 23},  // odd everything, two k-blocks
    {3, 5, 7},      // smaller than one register tile
    {1, 257, 1},    // single row/col, k-block boundary + 1
};

TEST(GemmPacked, GemmMatchesDoubleOracleWithinBound) {
  for (const auto& shape : kOracleShapes) {
    const std::size_t m = shape[0], k = shape[1], n = shape[2];
    auto prob = make_problem(m, k, n, m * k, k * n, 51);
    std::vector<float> c(m * n), oracle(m * n);
    std::vector<double> abs_sums(m * n, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p)
        for (std::size_t j = 0; j < n; ++j)
          abs_sums[i * n + j] +=
              std::abs(double(prob.a[i * k + p]) * prob.b[p * n + j]);
    gemm(m, k, n, prob.a.data(), prob.b.data(), c.data(), false);
    reference::gemm(m, k, n, prob.a.data(), prob.b.data(), oracle.data(),
                    false);
    expect_gemm_close(m, k, n, c, oracle, abs_sums);
  }
}

TEST(GemmPacked, GemmAtMatchesDoubleOracleWithinBound) {
  for (const auto& shape : kOracleShapes) {
    const std::size_t m = shape[0], k = shape[1], n = shape[2];
    auto prob = make_problem(m, k, n, k * m, k * n, 53);  // A stored [k x m]
    std::vector<float> c(m * n), oracle(m * n);
    std::vector<double> abs_sums(m * n, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p)
        for (std::size_t j = 0; j < n; ++j)
          abs_sums[i * n + j] +=
              std::abs(double(prob.a[p * m + i]) * prob.b[p * n + j]);
    gemm_at(m, k, n, prob.a.data(), prob.b.data(), c.data(), false);
    reference::gemm_at(m, k, n, prob.a.data(), prob.b.data(), oracle.data(),
                       false);
    expect_gemm_close(m, k, n, c, oracle, abs_sums);
  }
}

TEST(GemmPacked, GemmBtMatchesDoubleOracleWithinBound) {
  for (const auto& shape : kOracleShapes) {
    const std::size_t m = shape[0], k = shape[1], n = shape[2];
    auto prob = make_problem(m, k, n, m * k, n * k, 57);  // B stored [n x k]
    std::vector<float> c(m * n), oracle(m * n);
    std::vector<double> abs_sums(m * n, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p)
        for (std::size_t j = 0; j < n; ++j)
          abs_sums[i * n + j] +=
              std::abs(double(prob.a[i * k + p]) * prob.b[j * k + p]);
    gemm_bt(m, k, n, prob.a.data(), prob.b.data(), c.data(), false);
    reference::gemm_bt(m, k, n, prob.a.data(), prob.b.data(), oracle.data(),
                       false);
    expect_gemm_close(m, k, n, c, oracle, abs_sums);
  }
}

TEST(GemmPacked, AccumulateAddsOntoExistingC) {
  const std::size_t m = 7, k = 19, n = 11;
  auto prob = make_problem(m, k, n, m * k, k * n, 59);
  std::vector<float> base(m * n);
  Rng rng(61);
  for (auto& v : base) v = rng.normal(0, 1);
  std::vector<float> c = base, expected(m * n);
  gemm(m, k, n, prob.a.data(), prob.b.data(), c.data(), /*accumulate=*/true);
  gemm(m, k, n, prob.a.data(), prob.b.data(), expected.data(), false);
  for (std::size_t i = 0; i < m * n; ++i)
    EXPECT_FLOAT_EQ(c[i], base[i] + expected[i]);
}

TEST(GemmPacked, ZeroSizedDimensionsAreSafe) {
  float a = 1.0f, b = 2.0f;
  std::vector<float> c{5.0f};
  gemm(0, 3, 4, nullptr, nullptr, nullptr, false);
  gemm(1, 0, 1, &a, &b, c.data(), false);   // k == 0 overwrites with zeros
  EXPECT_FLOAT_EQ(c[0], 0.0f);
  c[0] = 5.0f;
  gemm(1, 0, 1, &a, &b, c.data(), true);    // k == 0, accumulate: no-op
  EXPECT_FLOAT_EQ(c[0], 5.0f);
}

TEST(GemmPacked, ScratchIsPooledAcrossCalls) {
  const std::size_t m = 8, k = 300, n = 40;
  auto prob = make_problem(m, k, n, m * k, k * n, 63);
  std::vector<float> c(m * n);
  gemm(m, k, n, prob.a.data(), prob.b.data(), c.data(), false);
  const std::size_t warm = gemm_scratch_bytes();
  EXPECT_GT(warm, 0u);
  gemm(m, k, n, prob.a.data(), prob.b.data(), c.data(), false);
  EXPECT_EQ(gemm_scratch_bytes(), warm);  // reused, not regrown
}

// ----------------------------------------------------------- ParallelFor

TEST(ParallelFor, SlicesPartitionTheRangeExactly) {
  for (std::size_t n : {0ul, 1ul, 4ul, 7ul, 64ul, 67ul, 1000ul}) {
    for (std::size_t align : {1ul, 4ul, 8ul}) {
      for (std::size_t parts : {1ul, 2ul, 3ul, 4ul, 7ul}) {
        std::size_t expect_begin = 0;
        for (std::size_t t = 0; t < parts; ++t) {
          const auto s = ParallelFor::slice_of(n, align, t, parts);
          EXPECT_EQ(s.begin, expect_begin);
          EXPECT_LE(s.begin, s.end);
          if (t + 1 < parts && s.end < n)
            EXPECT_EQ(s.end % align, 0u) << "interior boundary unaligned";
          expect_begin = s.end;
        }
        EXPECT_EQ(expect_begin, n) << "n=" << n << " align=" << align
                                   << " parts=" << parts;
      }
    }
  }
}

TEST(ParallelFor, RunVisitsEveryIndexOnce) {
  for (std::size_t threads : {1ul, 2ul, 4ul}) {
    ParallelFor pool(threads);
    EXPECT_EQ(pool.threads(), threads == 0 ? 1 : threads);
    const std::size_t n = 1003;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.run(n, 4, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelFor, PoolIsReusableAcrossJobs) {
  ParallelFor pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> total{0};
    pool.run(100, 1, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(total.load(), 100u);
  }
}

TEST(ParallelFor, IntraOpBudgetScopeRestores) {
  EXPECT_EQ(intra_op_threads(), 1u);
  {
    IntraOpBudgetScope scope(4);
    EXPECT_EQ(intra_op_threads(), 4u);
    ASSERT_NE(intra_op_pool(), nullptr);
    EXPECT_EQ(intra_op_pool()->threads(), 4u);
  }
  EXPECT_EQ(intra_op_threads(), 1u);
  EXPECT_EQ(intra_op_pool(), nullptr);
}

// The determinism guarantee (util/gemm.h): ParallelFor-backed gemm output
// is BITWISE equal to the single-thread result, because row partitioning
// never changes any output element's reduction order. Run under TSan via
// scripts/run_tsan.sh as well.
TEST(ParallelFor, GemmBitwiseIdenticalAcrossThreadCounts) {
  const std::size_t m = 67, k = 300, n = 129;  // tile tails + 2 k-blocks
  auto prob = make_problem(m, k, n, m * k, k * n, 71);
  auto probt = make_problem(m, k, n, k * m, k * n, 73);   // A^T layout
  auto probbt = make_problem(m, k, n, m * k, n * k, 79);  // B^T layout

  std::vector<float> serial(m * n), serial_at(m * n), serial_bt(m * n);
  gemm(m, k, n, prob.a.data(), prob.b.data(), serial.data(), false);
  gemm_at(m, k, n, probt.a.data(), probt.b.data(), serial_at.data(), false);
  gemm_bt(m, k, n, probbt.a.data(), probbt.b.data(), serial_bt.data(), false);

  for (std::size_t threads : {1ul, 2ul, 4ul}) {
    IntraOpBudgetScope scope(threads);
    std::vector<float> c(m * n), c_at(m * n), c_bt(m * n);
    gemm(m, k, n, prob.a.data(), prob.b.data(), c.data(), false);
    gemm_at(m, k, n, probt.a.data(), probt.b.data(), c_at.data(), false);
    gemm_bt(m, k, n, probbt.a.data(), probbt.b.data(), c_bt.data(), false);
    EXPECT_EQ(0, std::memcmp(c.data(), serial.data(), m * n * sizeof(float)))
        << "gemm differs at " << threads << " threads";
    EXPECT_EQ(0,
              std::memcmp(c_at.data(), serial_at.data(), m * n * sizeof(float)))
        << "gemm_at differs at " << threads << " threads";
    EXPECT_EQ(0,
              std::memcmp(c_bt.data(), serial_bt.data(), m * n * sizeof(float)))
        << "gemm_bt differs at " << threads << " threads";
  }
}

// ------------------------------------------------------------------ Table

TEST(Table, PrintsAlignedRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("| a | bb |"), std::string::npos);
  EXPECT_NE(os.str().find("| 1 | 2  |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, NumAndPctFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(-0.4, 2), "-0.40%");
  EXPECT_EQ(Table::pct(0.4, 2), "+0.40%");
  EXPECT_EQ(Table::pct(93.08, 2, false), "93.08%");
}

TEST(CurveSet, RecordsAndPrints) {
  CurveSet c("epoch", {"loss", "acc"});
  c.add_point(1, {0.5, 0.9});
  c.add_point(2, {0.4, 0.92});
  std::ostringstream os;
  c.print(os);
  EXPECT_NE(os.str().find("loss"), std::string::npos);
  EXPECT_THROW(c.add_point(3, {0.1}), std::invalid_argument);
}

// ------------------------------------------------------------------ Flags

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.i64("alpha", 0), 3);
  EXPECT_EQ(f.i64("beta", 0), 4);
  EXPECT_EQ(f.i64("gamma", 7), 7);
  EXPECT_FALSE(f.finish());
}

TEST(Flags, BooleanForms) {
  const char* argv[] = {"prog", "--fast", "--no-slow"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_TRUE(f.boolean("fast", false));
  EXPECT_FALSE(f.boolean("slow", true));
  EXPECT_FALSE(f.finish());
}

TEST(Flags, UnknownFlagThrowsOnFinish) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_THROW((void)f.finish(), std::runtime_error);
}

TEST(Flags, ListParsing) {
  const char* argv[] = {"prog", "--workers=1,4,8"};
  Flags f(2, const_cast<char**>(argv));
  const auto v = f.i64_list("workers", {2});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 8);
}

}  // namespace
